#pragma once
// Session graph store: named graphs and their shared derived artifacts.
//
// A resident service answers many queries against the same instances, so
// graphs live here once, together with the expensive artifacts derived
// from them (the default port-numbered L-digraph and, lazily, the
// whole-graph RefineState; anything a future request type needs can join
// GraphEntry).  Entries are handed out as shared_ptr<const GraphEntry>:
// the shared_ptr count IS the reference count, so eviction, replacement,
// or mutation never invalidates an in-flight request -- the superseded
// entry simply dies when its last request drops it.
//
// Epochs: a name is a *session* whose graph evolves.  Every binding
// carries an epoch counter -- 1 for a fresh put, previous + 1 when a put
// overwrites or a mutate edits the bound graph.  An in-flight query pins
// its epoch (it holds the entry shared_ptr it resolved); mutation
// installs the next epoch without touching the old one.  `content_hex`
// is a stable FNV-1a 64 hash of the canonical edge-list text -- unlike
// raw interner ids it never depends on process history, so it is safe to
// surface in deterministic responses.
//
// Mutation: `mutate` applies a batch of edge edits to a copy of the
// bound graph (atomic: a bad edit throws graph::MutationError and leaves
// the binding untouched) and installs the result as the next epoch.  If
// the old epoch had a materialized RefineState, the new entry forks it
// and delta-refines only the edit frontier (core::RefineState::
// refine_delta) instead of re-refining the whole graph.
//
// Eviction: the store holds at most `max_graphs` named entries; inserting
// beyond that evicts the least-recently-used name.  `content_id` is the
// canonical edge-list text interned in the global TypeInterner -- the
// result cache keys on it, so two names bound to identical graphs share
// cache entries and re-uploading identical content keeps the cache warm.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "lapx/core/interner.hpp"
#include "lapx/core/refine.hpp"
#include "lapx/graph/digraph.hpp"
#include "lapx/graph/graph.hpp"
#include "lapx/graph/mutation.hpp"
#include "lapx/graph/ooc.hpp"
#include "lapx/service/protocol.hpp"

namespace lapx::service {

/// A stored graph plus lazily-derived shared artifacts.  One immutable
/// epoch of a session; mutation creates the next entry, it never edits
/// this one.
///
/// Two backings share the interface: in-memory (put/generate/upload) and
/// out-of-core (open_ooc) -- the latter keeps the graph in its mmap'd
/// LAPXOOC1 file, streams view-type refinement over the file's step
/// segments under the store's residency budget, and only materializes an
/// in-RAM Graph/LDigraph when a handler demands the full adjacency AND
/// the instance is under the materialization cap (else kTooLarge).
class GraphEntry {
 public:
  GraphEntry(graph::Graph g, std::string edge_list, core::TypeId content,
             std::uint64_t epoch);

  /// Out-of-core backing.  `content` is intern("ooc:" + content_hex) where
  /// content_hex is the file's payload checksum in hex -- stable across
  /// processes, so persisted cache entries stay addressable.
  GraphEntry(std::unique_ptr<graph::OocGraph> ooc, std::string source_path,
             core::TypeId content, std::string content_hex,
             std::uint64_t epoch, graph::Vertex materialize_max_vertices);

  bool is_ooc() const { return ooc_ != nullptr; }
  const graph::OocGraph* ooc() const { return ooc_.get(); }
  const std::string& source_path() const { return source_path_; }

  /// Cheap shape accessors that never materialize: summaries and the
  /// views handler use these so huge ooc graphs stay on disk.
  graph::Vertex num_vertices() const;
  std::size_t num_edges() const;
  graph::Label alphabet() const;

  /// The full adjacency.  Ooc backing: lazily materialized from the file;
  /// throws ServiceError(kTooLarge) above the materialization cap.
  const graph::Graph& graph() const;
  const std::string& edge_list() const { return edge_list_; }
  core::TypeId content_id() const { return content_id_; }

  /// 1 for a fresh binding; previous + 1 after each overwrite or mutate.
  std::uint64_t epoch() const { return epoch_; }

  /// FNV-1a 64 of the canonical edge-list text, 16 hex digits.  Stable
  /// across processes and executor counts (raw interner ids are not).
  const std::string& content_hex() const { return content_hex_; }

  /// The default port-numbered L-digraph (PO substrate), built on first
  /// use and shared by every subsequent request touching this entry.
  const graph::LDigraph& ldigraph() const;

  /// Radius-r view types of every vertex against the global interner --
  /// identical ids to core::bulk_view_type_ids(ldigraph(), r).  The
  /// refinement state is built on first use, kept (with per-round
  /// tables) for deeper radii and for delta-forking by mutate.
  std::vector<core::TypeId> view_types(int r) const;

  /// True when the refinement state has been materialized (stats only).
  bool has_refine_state() const;

  /// Pre-publication hook used by SessionStore::mutate: if `prev` has a
  /// materialized RefineState, fork it and re-refine only the edit
  /// frontier against this entry's graph.  Must be called before the
  /// entry is visible to other threads.
  void fork_refine_from(const GraphEntry& prev) const;

 private:
  graph::Graph graph_;  // empty for ooc entries until materialized
  // Declared before refine_ (destroyed after it): the streaming
  // RefineState holds spans into the mapped file.
  std::unique_ptr<graph::OocGraph> ooc_;
  std::string source_path_;
  graph::Vertex materialize_max_ = 0;
  std::string edge_list_;
  core::TypeId content_id_;
  std::uint64_t epoch_;
  std::string content_hex_;
  mutable std::once_flag ld_once_;
  mutable std::unique_ptr<graph::LDigraph> ld_;
  mutable std::once_flag graph_once_;
  mutable std::unique_ptr<graph::Graph> mat_graph_;  // ooc materialization
  mutable std::mutex refine_mu_;
  mutable std::unique_ptr<core::RefineState> refine_;
};

class SessionStore {
 public:
  struct Options {
    std::size_t max_graphs = 64;
    /// Residency budget handed to every OocGraph this store opens
    /// (serve --ooc-budget-mb); 0 = unlimited.
    std::size_t ooc_budget_bytes = std::size_t{256} << 20;
    /// Largest ooc graph graph()/ldigraph() will materialize in RAM;
    /// larger instances answer adjacency-hungry ops with kTooLarge.
    graph::Vertex ooc_materialize_max_vertices = 1 << 20;
  };
  struct Stats {
    std::uint64_t inserted = 0;
    std::uint64_t evicted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t overwritten = 0;  ///< puts that replaced a live binding
    std::uint64_t mutated = 0;      ///< successful mutate calls
    std::size_t resident = 0;
  };

  SessionStore() : SessionStore(Options{}) {}
  explicit SessionStore(Options opt);

  /// Binds `name` to the graph (replacing any previous binding) and
  /// returns the new entry.  May evict the least-recently-used other name.
  std::shared_ptr<const GraphEntry> put(const std::string& name,
                                        graph::Graph g);

  /// Binds `name` to a LAPXOOC1 file opened under the store's residency
  /// budget (same epoch/LRU semantics as put).  Throws graph::OocError
  /// when the file is missing or fails validation.
  std::shared_ptr<const GraphEntry> open_ooc(const std::string& name,
                                             const std::string& path);

  /// Looks up a name, refreshing its LRU position; nullptr when absent.
  std::shared_ptr<const GraphEntry> get(const std::string& name);

  /// Applies `edits` to a copy of the graph bound to `name` and installs
  /// the result as the next epoch, delta-forking the refinement state
  /// when one is materialized.  Returns the new entry, or nullptr when
  /// the name is absent.  Throws graph::MutationError on an invalid edit
  /// (the binding is left untouched).  Mutations are serialized, so
  /// epochs of one name are strictly increasing.
  std::shared_ptr<const GraphEntry> mutate(
      const std::string& name, std::span<const graph::EdgeEdit> edits);

  /// Removes a binding; false when the name is absent.
  bool drop(const std::string& name);

  /// Bound names in lexicographic order (deterministic listing).
  std::vector<std::string> names() const;

  Stats stats() const;

 private:
  void evict_locked();

  Options opt_;
  mutable std::mutex mu_;
  std::mutex mutate_mu_;  // serializes mutate's clone+rebind sequence
  // LRU list front = most recent; map values point into the list.
  struct Slot {
    std::string name;
    std::shared_ptr<const GraphEntry> entry;
  };
  std::list<Slot> lru_;
  std::unordered_map<std::string, std::list<Slot>::iterator> index_;
  Stats stats_;
};

}  // namespace lapx::service
