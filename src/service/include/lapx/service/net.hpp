#pragma once
// Shared socket plumbing for the lapxd front ends (Server and the shard
// Router): endpoint binding plus the hardened recv/send primitives.
// Factored out of server.cpp so both accept loops get identical EINTR,
// SIGPIPE, and resource-exhaustion behavior.

#include <cstddef>
#include <string>

#include "lapx/service/server.hpp"

namespace lapx::service::net {

/// A bound, listening socket for an Endpoint.  Owns the fd and (for
/// Unix-domain endpoints) unlinks the path on destruction.
class ListenSocket {
 public:
  /// Binds and listens; throws std::runtime_error on socket failures.
  /// Unix-domain paths are unlinked before binding (rebinding a path a
  /// dead process left behind must succeed).  tcp_port 0 binds an
  /// ephemeral port, reported by bound_tcp_port().
  ListenSocket(const Endpoint& endpoint, int backlog);
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  int fd() const { return fd_; }
  int bound_tcp_port() const { return bound_port_; }

 private:
  int fd_ = -1;
  int bound_port_ = 0;
  std::string unix_path_;  // unlinked on teardown when non-empty
};

/// recv with EINTR retry: a signal delivered mid-read (the CLI installs
/// handlers for SIGINT/SIGTERM on the daemon) is not a peer close;
/// bailing out used to drop the connection and every pipelined in-flight
/// response.  Returns recv's result with EINTR folded away.  Honors the
/// testing::inject_recv_eintr fault-injection seam.
ssize_t recv_retry(int fd, char* buf, std::size_t n);

/// Writes all of `data`, retrying EINTR; gives up silently on any other
/// error (peer gone; nothing useful to do).
void send_all(int fd, const std::string& data);

}  // namespace lapx::service::net
