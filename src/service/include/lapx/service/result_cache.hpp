#pragma once
// Content-addressed result cache: request fingerprint -> serialized result.
//
// Cacheable requests are pure functions of (request fields, graph
// content), so the cache key is the canonical request fingerprint interned
// in the global TypeInterner (service/protocol.hpp) -- a dense TypeId,
// exactly the trick the canonical-type hot paths use.  Values are the
// serialized `result` JSON payloads; the response envelope is rebuilt per
// request, so a warm hit is byte-identical to the cold computation by
// construction (the bytes ARE the cold computation's bytes).
//
// Bounded two ways: entry count and total payload bytes; exceeding either
// evicts least-recently-used entries.  Hit/miss/eviction counters feed the
// `stats` request and bench_service's hit-rate table.
//
// Concurrency: inserts race when executors > 1 (two requests for the same
// fingerprint can both miss and both compute).  The first writer wins --
// put() keeps the resident payload and hands the loser the winner's bytes
// -- so the bytes bound to a fingerprint never change for the cache
// lifetime of the entry, which is what lets a warm hit replay the cold
// computation's exact bytes no matter which executor got there first.

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lapx/core/interner.hpp"

namespace lapx::service {

class ResultCache {
 public:
  struct Options {
    std::size_t max_entries = 4096;
    std::size_t max_bytes = std::size_t{1} << 26;  ///< 64 MiB of payloads
  };
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };

  ResultCache() : ResultCache(Options{}) {}
  explicit ResultCache(Options opt);

  /// Looks a fingerprint up, refreshing LRU and counting hit/miss.
  std::optional<std::string> get(core::TypeId fingerprint);

  /// Inserts a payload, then evicts to the bounds.  First writer wins: if
  /// the fingerprint is already resident the stored payload is kept (LRU
  /// refreshed only).  Returns the canonical resident bytes -- callers
  /// must respond with the RETURNED payload, not the one they passed in.
  std::string put(core::TypeId fingerprint, std::string payload);

  /// Drops everything (counters survive; bench uses this for cold runs).
  /// In-memory only: an attached persistence layer is not cleared.
  void clear();

  Stats stats() const;

  /// Called after put() inserts a NEW entry (first writer only, outside
  /// the cache lock) with the resident fingerprint and payload -- the
  /// persistence journal hangs off this.  Set once, before concurrent
  /// use; losers of a put() race and LRU refreshes never fire it.
  using FillHook = std::function<void(core::TypeId, const std::string&)>;
  void set_fill_hook(FillHook hook) { fill_hook_ = std::move(hook); }

  /// Resident entries, least-recently-used first, so replaying them
  /// through put() in order reconstructs the same LRU order.  Snapshot
  /// export; O(bytes) copy.
  std::vector<std::pair<core::TypeId, std::string>> entries() const;

 private:
  void evict_locked();

  Options opt_;
  mutable std::mutex mu_;
  struct Slot {
    core::TypeId key;
    std::string payload;
  };
  std::list<Slot> lru_;  // front = most recent
  std::unordered_map<core::TypeId, std::list<Slot>::iterator> index_;
  Stats stats_;
  FillHook fill_hook_;
};

}  // namespace lapx::service
