#pragma once
// lapxd wire protocol: line-delimited JSON requests and responses.
//
// Request (one line):
//   {"id": 7, "op": "homogeneity", "graph": "g1", "radius": 2}
// Response (one line, field order fixed):
//   {"id":7,"ok":true,"result":{...}}
//   {"id":7,"ok":false,"code":"not_found","error":"no such graph: g1"}
//
// Ops
//   mutating / admin (never cached):
//     ping | generate | upload | open | drop | list | stats | shutdown
//   queries (cached, coalesced, deterministic):
//     analyze | homogeneity | views | optimum | run | fractional
//
// Error codes: bad_request, not_found, too_large, busy, deadline,
// internal.  `busy` is the backpressure signal -- the bounded scheduler
// queue was full and the request was rejected without queueing (the
// 429 analogue); `deadline` means the request expired while queued
// (client-supplied "deadline_ms" budget).
//
// The fingerprint of a query is the canonical dump (keys sorted, "id" and
// "deadline_ms" stripped) of the request with the graph *name* replaced by
// the interned TypeId of the graph's canonical edge-list text -- so the
// cache is addressed by content, not by name, and identical graphs under
// different names (or re-uploads of identical content) share entries.
// Only whitelisted per-op fields may appear in a query request; reserved
// or unknown keys (e.g. a client-supplied "graph#content") are rejected
// with bad_request so they can never enter the fingerprint.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "lapx/core/interner.hpp"
#include "lapx/service/json.hpp"

namespace lapx::service {

/// Machine-readable failure categories carried in the response envelope.
enum class ErrorCode {
  kBadRequest,
  kNotFound,
  kTooLarge,
  kBusy,
  kDeadline,
  kInternal,
};

const char* error_code_name(ErrorCode code);

/// A typed failure any service layer wants reported to the client (lives
/// here rather than handlers.hpp so the session store can throw it too).
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// A parsed request: the raw object plus the validated common fields.
struct Request {
  Json body;                          ///< the full request object
  std::string op;                     ///< required "op" field
  std::optional<std::int64_t> id;     ///< optional "id", echoed back
  std::optional<std::int64_t> deadline_ms;  ///< optional queue-wait budget
};

/// Parses and validates one request line.  Throws std::invalid_argument
/// with a client-facing message on malformed input.
Request parse_request(const std::string& line, const Json::Limits& limits = {});

/// Canonical cache fingerprint of a query request: sorted-key dump with
/// "id"/"deadline_ms" stripped and the given content id substituted for
/// the graph name, interned into `interner`.  Throws std::invalid_argument
/// if the request contains any field outside the per-op whitelist.
core::TypeId request_fingerprint(
    const Request& req, core::TypeId graph_content,
    core::TypeInterner& interner = core::TypeInterner::global());

/// Response envelopes (already-serialized single lines, no trailing \n).
std::string ok_response(std::optional<std::int64_t> id,
                        const std::string& result_payload);
std::string error_response(std::optional<std::int64_t> id, ErrorCode code,
                           const std::string& message);

}  // namespace lapx::service
