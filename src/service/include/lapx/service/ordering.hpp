#pragma once
// Response-ordering layer: the determinism-preserving merge.
//
// With executors > 1 the scheduler completes jobs in whatever order the
// hardware likes; the service contract says a connection's responses
// arrive in submission order with exactly the bytes a single-executor
// service would have produced.  ResponseSequencer is the reorder buffer
// that closes that gap: Pendings enter in submission order (their
// sequence numbers are monotonic by construction) and leave head-first,
// each head released only when resolved.  Out-of-order completions
// simply wait in the buffer -- parallelism shows up as throughput, never
// as reordering.
//
// One sequencer per connection (or per in-process request stream); it is
// deliberately NOT thread-safe -- a connection is a single logical stream
// and gains nothing from concurrent draining.  Flow control: callers cap
// in_flight() (e.g. Server::Options::max_pipeline) by blocking on
// drain_one() before submitting more, which keeps any one connection from
// monopolizing the scheduler queue.

#include <cstddef>
#include <deque>
#include <string>

#include "lapx/service/service.hpp"

namespace lapx::service {

class ResponseSequencer {
 public:
  /// Takes ownership of the next in-flight response.  Must be called in
  /// submission order (Pending sequence numbers strictly increase).
  void enqueue(Service::Pending pending);

  /// Number of responses not yet emitted.
  std::size_t in_flight() const { return pending_.size(); }

  /// Appends every contiguous ready response at the head of the stream to
  /// `out` (each followed by '\n') without blocking; stops at the first
  /// response still computing.  Returns how many were emitted.
  std::size_t drain_ready(std::string& out);

  /// Blocks for the head response and appends it (plus '\n') to `out`.
  /// Returns false when nothing is in flight.
  bool drain_one(std::string& out);

  /// Blocks until everything in flight has been emitted into `out`.
  void drain_all(std::string& out);

 private:
  std::deque<Service::Pending> pending_;
};

}  // namespace lapx::service
