#pragma once
// Response-ordering layer: the determinism-preserving merge.
//
// With executors > 1 the scheduler completes jobs in whatever order the
// hardware likes; the service contract says a connection's responses
// arrive in submission order with exactly the bytes a single-executor
// service would have produced.  ResponseSequencer is the reorder buffer
// that closes that gap: entries enter in submission order and leave
// head-first, each head released only when resolved.  Out-of-order
// completions simply wait in the buffer -- parallelism shows up as
// throughput, never as reordering.
//
// Three kinds of entry share the buffer, so the same sequencer merges
// local and remote work (the sharded router's cross-shard merge):
//   * a local Service::Pending (enqueue) -- resolved or executor-deferred;
//   * an already-rendered response line (enqueue_resolved) -- parse
//     errors, router-local ops, unavailable-shard errors;
//   * a deferred remote response (enqueue_deferred) -- a {ready, fetch}
//     pair, typically wrapping a shard channel's next line.
// Because entries only ever leave head-first, a remote fetch() is invoked
// at most once and strictly in enqueue order per channel, which is what
// lets a FIFO byte stream from a shard stand in for N per-request
// futures.
//
// One sequencer per connection (or per in-process request stream); it is
// deliberately NOT thread-safe -- a connection is a single logical stream
// and gains nothing from concurrent draining.  Flow control: callers cap
// in_flight() (e.g. Server::Options::max_pipeline) by blocking on
// drain_one() before submitting more, which keeps any one connection from
// monopolizing the scheduler queue.

#include <cstddef>
#include <deque>
#include <functional>
#include <string>

#include "lapx/service/service.hpp"

namespace lapx::service {

class ResponseSequencer {
 public:
  /// Takes ownership of the next in-flight response.  Must be called in
  /// submission order (Pending sequence numbers strictly increase).
  void enqueue(Service::Pending pending);

  /// Enqueues an already-rendered response line (no trailing '\n').
  void enqueue_resolved(std::string response_line);

  /// Enqueues a response that resolves elsewhere: `ready` is a
  /// non-blocking availability probe, `fetch` blocks for (and renders)
  /// the response line (no trailing '\n').  `fetch` is called at most
  /// once, and only when this entry is at the head of the stream; both
  /// callables must not throw (render failures as error responses).
  void enqueue_deferred(std::function<bool()> ready,
                        std::function<std::string()> fetch);

  /// Number of responses not yet emitted.
  std::size_t in_flight() const { return pending_.size(); }

  /// Appends every contiguous ready response at the head of the stream to
  /// `out` (each followed by '\n') without blocking; stops at the first
  /// response still computing.  Returns how many were emitted.
  std::size_t drain_ready(std::string& out);

  /// Blocks for the head response and appends it (plus '\n') to `out`.
  /// Returns false when nothing is in flight.
  bool drain_one(std::string& out);

  /// Blocks until everything in flight has been emitted into `out`.
  void drain_all(std::string& out);

 private:
  struct Entry {
    enum class Kind { kLocal, kResolved, kDeferred };
    Kind kind = Kind::kResolved;
    Service::Pending local;
    std::string line;
    std::function<bool()> ready;
    std::function<std::string()> fetch;
  };

  bool head_ready() const;
  void emit_head(std::string& out);

  std::deque<Entry> pending_;
};

}  // namespace lapx::service
