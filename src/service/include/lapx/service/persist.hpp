#pragma once
// Crash-safe persistence for the result cache: a versioned binary
// snapshot plus an append-only journal of cache fills.
//
// Why this is not just "write the map": cache keys are TypeIds, and
// TypeIds are process-local (dense in interner insertion order), so a
// key's numeric value means nothing to the next process.  Worse, the
// fingerprint *spelling* embeds another TypeId -- the interned id of the
// graph's canonical edge-list text ("graph#content") -- so even the
// spelling is not restart-stable.  The on-disk records therefore store:
//
//   * a content table: each distinct graph edge-list text, keyed by a
//     small file-local slot number, and
//   * per entry: the fingerprint key JSON with "graph#content" rewritten
//     to the slot, plus the cached payload bytes verbatim.
//
// Loading inverts the rewrite through the LIVE interner: intern the
// content text, substitute the fresh TypeId back into the key, re-dump
// (the canonical serializer makes this byte-stable), and intern the
// framed spelling -- exactly the string protocol.cpp would build for the
// same request against the re-uploaded graph.  Payload bytes are never
// reparsed, so a warm-restart hit replays the cold computation's exact
// bytes and responses stay byte-identical across restarts.
//
// File layout under the cache dir (both files share one record framing):
//
//   snapshot.lapxc   "LAPXC001" magic, then records.  Rewritten as a
//                    whole via write-to-temp + fsync + rename, so a
//                    crash mid-save leaves the previous snapshot intact.
//   journal.lapxj    "LAPXJ001" magic, then records appended on every
//                    first-writer-wins cache fill (one write() each).
//
//   record  := u32le body_len | u8 type | body | u32le crc32(type+body)
//   'C' body := u32le slot | edge-list text
//   'E' body := u32le key_len | key JSON (graph#content = slot) | payload
//
// Replay invariants:
//   * a truncated tail (kill -9 mid-append, torn write) is detected by
//     framing or checksum, DISCARDED, and reported -- never a crash, and
//     every record before the tear is kept;
//   * after a load that discarded a journal tail, the journal is
//     truncated back to its valid prefix so new appends extend good data;
//   * slots are assigned monotonically for the lifetime of the writer and
//     never reused, so snapshot and journal always agree on what a slot
//     means;
//   * replayed fills go through ResultCache::put, whose first-writer-wins
//     rule also makes duplicate records (snapshot + journal overlap)
//     harmless.
//
// Concurrency: append_fill is called from scheduler executors; a single
// mutex serializes appends and snapshots.  One writer per directory --
// two daemons sharing a cache dir would interleave journals (documented,
// not locked against).

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lapx/core/interner.hpp"

namespace lapx::service {

class CachePersist {
 public:
  /// Load/append/save counters plus the last error, for `cache_info`.
  struct Info {
    std::string dir;
    std::uint64_t loaded_entries = 0;   ///< entries replayed into the cache
    std::uint64_t loaded_contents = 0;  ///< distinct graph texts replayed
    std::uint64_t discarded_bytes = 0;  ///< torn/corrupt tail bytes dropped
    std::uint64_t dropped_records = 0;  ///< well-framed but unusable records
    std::uint64_t journal_appends = 0;  ///< fills journaled by this process
    std::uint64_t snapshots_written = 0;
    std::string last_error;  ///< empty = every operation so far was clean
  };

  /// Opens (creating if needed) the cache directory.  Throws
  /// std::runtime_error when the directory cannot be created or probed --
  /// a daemon asked to persist somewhere unwritable should fail loudly
  /// at startup, not silently forget results.
  explicit CachePersist(
      std::string dir,
      core::TypeInterner& interner = core::TypeInterner::global());
  ~CachePersist();

  CachePersist(const CachePersist&) = delete;
  CachePersist& operator=(const CachePersist&) = delete;

  /// Replays snapshot then journal; returns (fingerprint, payload) pairs
  /// oldest-first, fingerprints freshly interned.  Never throws on file
  /// content: torn tails and corrupt records are discarded and surfaced
  /// through info().  Also repairs the journal (truncates a bad tail) so
  /// subsequent appends extend a valid prefix.
  std::vector<std::pair<core::TypeId, std::string>> load();

  /// Journals one cache fill (thread-safe, one write() per record).
  /// Write failures flip the journal into an error state surfaced by
  /// info(); they never throw into the executor.
  void append_fill(core::TypeId fingerprint, const std::string& payload);

  /// Atomically rewrites the snapshot from `entries` (oldest-first) and
  /// truncates the journal.  Returns false (with info().last_error set)
  /// on I/O failure; the previous snapshot survives any failure.
  bool save_snapshot(
      const std::vector<std::pair<core::TypeId, std::string>>& entries);

  Info info() const;

  std::string snapshot_path() const;
  std::string journal_path() const;

 private:
  struct ReplayState;

  // Parses a fingerprint spelling into (content id, key JSON); false when
  // the spelling is not a query fingerprint.
  bool split_fingerprint(core::TypeId fingerprint, core::TypeId& content,
                         std::string& key_json) const;
  // Appends the 'C' record for a content id not yet written; returns its
  // slot.  Requires mu_ held.
  std::uint32_t slot_for_locked(core::TypeId content, std::string& out);
  void replay_file_locked(const std::string& path, const char* magic,
                          bool repair_tail, ReplayState& state);
  bool write_journal_locked(const std::string& bytes);
  void note_error_locked(const std::string& what);

  std::string dir_;
  core::TypeInterner& interner_;
  mutable std::mutex mu_;
  int journal_fd_ = -1;
  bool journal_bad_ = false;  ///< a write failed; stop appending
  // Content slots already present in the current snapshot/journal pair.
  std::unordered_map<core::TypeId, std::uint32_t> slot_of_content_;
  std::uint32_t next_slot_ = 0;
  Info info_;
};

/// Per-shard persistence layout under one base cache directory.
///
/// Each shard worker owns a disjoint slice of the result cache, so each
/// gets its own CachePersist directory "<base>/shard-<i>-of-<n>" -- the
/// shard count is part of the directory name because entries are placed
/// by the hash ring, and a cache written under a different ring would
/// hand shards entries they no longer own.  "<base>/shards.meta" records
/// the count the directory was last served with; a mismatch is detected
/// (previous_shard_count / count_changed) and reported, never migrated:
/// the old directories are left untouched, the new count serves cold,
/// and reverting to the old count restores the old warmth.
struct ShardLayout {
  std::string base_dir;
  int shard_count = 0;
  int previous_shard_count = 0;  ///< 0 = fresh directory (no meta yet)
  bool count_changed = false;
  std::vector<std::string> shard_dirs;  ///< one per shard, in shard order
};

/// Plans the per-shard cache directories under `base_dir` (creating the
/// base and rewriting shards.meta) for `shard_count` workers.  Throws
/// std::runtime_error when the base cannot be created or probed -- same
/// fail-loudly contract as CachePersist.
ShardLayout plan_shard_layout(const std::string& base_dir, int shard_count);

}  // namespace lapx::service
