#pragma once
// Batch scheduler: bounded admission in front of the parallel runtime.
//
// Connection threads do not compute; they submit work here and wait on a
// shared_future.  The scheduler provides the three service guarantees the
// raw thread pool cannot:
//
//  * Backpressure.  The queue is bounded; submit() on a full queue fails
//    fast with Outcome::Status::kBusy (the protocol's `busy` error, the
//    429 analogue) instead of growing memory without bound.
//  * Coalescing.  Concurrent requests with the same cache fingerprint
//    share ONE execution: the second submitter gets the first job's
//    future.  Combined with the result cache this makes a thundering herd
//    of identical queries cost one computation.
//  * Deadlines.  A request may carry a queue-wait budget; jobs whose
//    budget expired before an executor picked them up complete with
//    kDeadline and are never run.
//
// Executors default to a single thread: requests are *serialized* onto
// runtime/parallel (which parallelizes inside each request via
// parallel_for), so per-request work is never interleaved and responses
// stay deterministic.  With executors > 1 independent requests compute
// concurrently and may COMPLETE out of order; every submission therefore
// carries a monotonic sequence number, and the response-ordering layer
// (service/ordering.hpp) merges completions back into submission order so
// parallelism is observationally invisible to any single connection.
//
// Shutdown contract: every accepted job resolves.  Executors that observe
// `stopping_` drain the queue, resolving still-queued jobs as kBusy,
// before exiting; the destructor keeps a final sweep as a backstop.  No
// future returned by submit() can hang across destruction.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "lapx/core/interner.hpp"

namespace lapx::service {

/// What a scheduled job produced.
struct Outcome {
  enum class Status { kOk, kError, kBusy, kDeadline };
  Status status = Status::kOk;
  std::string payload;  ///< serialized result (kOk) or message (kError)
};

class BatchScheduler {
 public:
  struct Options {
    std::size_t queue_capacity = 128;
    int executors = 1;
  };
  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t coalesced = 0;
    std::uint64_t rejected_busy = 0;
    std::uint64_t expired = 0;
    std::uint64_t executed = 0;   ///< jobs an executor started running
    std::uint64_t completed = 0;  ///< jobs that ran and resolved
    /// Gauge (not a counter): jobs waiting in the queue at stats() time.
    /// Surfaced per shard so an operator can see WHICH worker's bounded
    /// queue is the one emitting `busy` backpressure.
    std::uint64_t queued = 0;
  };
  // Conservation invariant, once every returned future is ready:
  //   submitted == completed + rejected_busy + coalesced + expired
  // (jobs resolved kBusy at shutdown count under rejected_busy).

  using Work = std::function<Outcome()>;

  /// One accepted submit(): the per-job sequence number plus the future.
  /// Sequence numbers are monotonic in submission order across the whole
  /// scheduler (every call gets one, including coalesced joins and busy
  /// rejections), so "sorted by seq" == "submission order".
  struct Submission {
    std::uint64_t seq = 0;
    std::shared_future<Outcome> future;
  };

  BatchScheduler() : BatchScheduler(Options{}) {}
  explicit BatchScheduler(Options opt);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  /// Enqueues work (or joins an identical in-flight job when `fingerprint`
  /// != core::kNoType).  The returned future is always valid; a full queue
  /// yields an already-resolved kBusy outcome.  `deadline_ms < 0` means no
  /// deadline.
  Submission submit(core::TypeId fingerprint, Work work,
                    std::int64_t deadline_ms = -1);

  Stats stats() const;

  int executors() const { return opt_.executors; }

 private:
  struct Job {
    std::uint64_t seq = 0;  ///< sequence of the submission that created it
    core::TypeId fingerprint = core::kNoType;
    Work work;
    std::promise<Outcome> promise;
    std::shared_future<Outcome> future;
    std::chrono::steady_clock::time_point deadline;
    bool has_deadline = false;
  };

  void executor_loop();
  // Pops and resolves every queued job as kBusy; requires mu_ NOT held.
  void drain_queue_resolving();

  Options opt_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Job>> queue_;
  // Queued or running jobs by fingerprint, for coalescing.
  std::unordered_map<core::TypeId, std::shared_ptr<Job>> inflight_;
  Stats stats_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> executors_;
};

}  // namespace lapx::service
