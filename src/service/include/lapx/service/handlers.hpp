#pragma once
// Query handlers: one pure function of (request, graph entry) per query op.
//
// Handlers compute the `result` payload of cacheable requests.  They must
// be deterministic functions of the request fields and the graph content
// -- no clocks, no global mutable state, no iteration over unordered
// containers -- because their serialized output is stored in the result
// cache and replayed verbatim, and because the service invariant requires
// byte-identical responses at every LAPX_THREADS value.  Heavy per-vertex
// work inside a handler goes through runtime/parallel, which guarantees
// thread-count-independent results.

#include <string>
#include <vector>

#include "lapx/graph/mutation.hpp"
#include "lapx/service/protocol.hpp"
#include "lapx/service/session_store.hpp"

namespace lapx::service {

// ServiceError itself lives in protocol.hpp (the session store throws it
// too); handlers see it through the include above.

/// Service-side instance caps, shared by generate, upload, and mutate.
inline constexpr long long kMaxServiceVertices = 1 << 20;
inline constexpr long long kMaxServiceEdges = 1 << 22;

/// True for ops dispatched through cache + scheduler (analyze,
/// homogeneity, views, optimum, run, fractional).
bool is_query_op(const std::string& op);

/// Runs one query op against a graph entry; returns the result object.
/// Throws ServiceError for client-facing failures (unknown op, bad
/// fields, instance too large).
Json handle_query(const Request& req, const GraphEntry& entry);

/// Builds a graph from a `generate` request (family + integer args) under
/// service-side size limits.  Throws ServiceError on bad families/args.
graph::Graph build_generated_graph(const Request& req);

/// Parses a `upload` request's edge-list text under service-side limits.
graph::Graph parse_uploaded_graph(const Request& req);

/// Parses a `mutate` request's "edits" array -- objects of the form
/// {"op": "add"|"remove", "u": int, "v": int} -- under a batch-size cap.
/// Validates shape only; endpoint/edge validity is checked against the
/// graph by apply_edits.
std::vector<graph::EdgeEdit> parse_edge_edits(const Request& req);

}  // namespace lapx::service
