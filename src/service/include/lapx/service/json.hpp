#pragma once
// Minimal JSON for the lapxd wire protocol (service/protocol.hpp).
//
// The service speaks line-delimited JSON to untrusted clients, so the
// parser gets the same hardening treatment as the gather parser: explicit
// nesting-depth and size guards, overflow-checked number parsing, and
// std::invalid_argument (never UB) on malformed input.
//
// Serialization is canonical by construction -- objects are ordered
// vectors of (key, value) pairs written in insertion order, integers print
// as decimal, and doubles print as fixed %.6f with trailing zeros trimmed
// -- so a response built from the same values is byte-identical on every
// run, thread count, and cache state (the service determinism invariant).

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lapx::service {

/// A JSON value.  Objects preserve insertion order (canonical output);
/// `sorted_copy` provides the key-sorted form used for fingerprints.
class Json {
 public:
  enum class Kind { Null, Bool, Int, Double, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  static Json boolean(bool b);
  static Json integer(std::int64_t i);
  static Json number(double d);
  static Json string(std::string s);
  static Json array();
  static Json object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_int() const { return kind_ == Kind::Int; }
  bool is_number() const { return kind_ == Kind::Int || kind_ == Kind::Double; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const;
  std::int64_t as_int() const;      ///< throws unless Int
  double as_double() const;         ///< Int or Double
  const std::string& as_string() const;

  const std::vector<Json>& items() const;        ///< throws unless Array
  Json& push_back(Json v);                       ///< appends; returns element

  /// Object access.  `set` appends or overwrites preserving first-insertion
  /// order; `find` returns nullptr when the key is absent.
  const std::vector<std::pair<std::string, Json>>& members() const;
  Json& set(std::string key, Json v);
  const Json* find(const std::string& key) const;

  /// Canonical one-line serialization (no whitespace).
  std::string dump() const;

  /// Deep copy with object keys sorted recursively (fingerprint form).
  Json sorted_copy() const;

  /// Parse limits; defaults sized for service requests.
  struct Limits {
    std::size_t max_depth = 64;
    std::size_t max_bytes = std::size_t{1} << 24;  ///< 16 MiB of input text
  };

  /// Parses one JSON document spanning the whole input (trailing
  /// whitespace allowed).  Throws std::invalid_argument on anything else.
  static Json parse(std::string_view text);
  static Json parse(std::string_view text, const Limits& limits);

 private:
  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // vector of an incomplete element type is supported since C++17, so
  // children live by value and copies are deep copies.
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;

  void append_to(std::string& out) const;
};

}  // namespace lapx::service
