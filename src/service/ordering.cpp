#include "lapx/service/ordering.hpp"

#include <utility>

namespace lapx::service {

void ResponseSequencer::enqueue(Service::Pending pending) {
  Entry e;
  e.kind = Entry::Kind::kLocal;
  e.local = std::move(pending);
  pending_.push_back(std::move(e));
}

void ResponseSequencer::enqueue_resolved(std::string response_line) {
  Entry e;
  e.kind = Entry::Kind::kResolved;
  e.line = std::move(response_line);
  pending_.push_back(std::move(e));
}

void ResponseSequencer::enqueue_deferred(std::function<bool()> ready,
                                         std::function<std::string()> fetch) {
  Entry e;
  e.kind = Entry::Kind::kDeferred;
  e.ready = std::move(ready);
  e.fetch = std::move(fetch);
  pending_.push_back(std::move(e));
}

bool ResponseSequencer::head_ready() const {
  const Entry& head = pending_.front();
  switch (head.kind) {
    case Entry::Kind::kLocal:
      return head.local.ready();
    case Entry::Kind::kResolved:
      return true;
    case Entry::Kind::kDeferred:
      return head.ready();
  }
  return false;
}

void ResponseSequencer::emit_head(std::string& out) {
  Entry& head = pending_.front();
  switch (head.kind) {
    case Entry::Kind::kLocal:
      out += head.local.get();
      break;
    case Entry::Kind::kResolved:
      out += head.line;
      break;
    case Entry::Kind::kDeferred:
      out += head.fetch();
      break;
  }
  out += '\n';
  pending_.pop_front();
}

std::size_t ResponseSequencer::drain_ready(std::string& out) {
  std::size_t emitted = 0;
  while (!pending_.empty() && head_ready()) {
    emit_head(out);
    ++emitted;
  }
  return emitted;
}

bool ResponseSequencer::drain_one(std::string& out) {
  if (pending_.empty()) return false;
  emit_head(out);
  return true;
}

void ResponseSequencer::drain_all(std::string& out) {
  while (drain_one(out)) {
  }
}

}  // namespace lapx::service
