#include "lapx/service/ordering.hpp"

#include <utility>

namespace lapx::service {

void ResponseSequencer::enqueue(Service::Pending pending) {
  pending_.push_back(std::move(pending));
}

std::size_t ResponseSequencer::drain_ready(std::string& out) {
  std::size_t emitted = 0;
  while (!pending_.empty() && pending_.front().ready()) {
    out += pending_.front().get();
    out += '\n';
    pending_.pop_front();
    ++emitted;
  }
  return emitted;
}

bool ResponseSequencer::drain_one(std::string& out) {
  if (pending_.empty()) return false;
  out += pending_.front().get();
  out += '\n';
  pending_.pop_front();
  return true;
}

void ResponseSequencer::drain_all(std::string& out) {
  while (drain_one(out)) {
  }
}

}  // namespace lapx::service
