#include "lapx/service/protocol.hpp"

#include <stdexcept>

namespace lapx::service {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kTooLarge: return "too_large";
    case ErrorCode::kBusy: return "busy";
    case ErrorCode::kDeadline: return "deadline";
    case ErrorCode::kInternal: return "internal";
  }
  return "internal";
}

Request parse_request(const std::string& line, const Json::Limits& limits) {
  Request req;
  req.body = Json::parse(line, limits);
  if (!req.body.is_object())
    throw std::invalid_argument("request must be a JSON object");
  const Json* op = req.body.find("op");
  if (op == nullptr || !op->is_string() || op->as_string().empty())
    throw std::invalid_argument("missing string field \"op\"");
  req.op = op->as_string();
  if (const Json* id = req.body.find("id"); id != nullptr) {
    if (!id->is_int()) throw std::invalid_argument("\"id\" must be an integer");
    req.id = id->as_int();
  }
  if (const Json* dl = req.body.find("deadline_ms"); dl != nullptr) {
    if (!dl->is_int() || dl->as_int() < 0)
      throw std::invalid_argument("\"deadline_ms\" must be a non-negative "
                                  "integer");
    req.deadline_ms = dl->as_int();
  }
  return req;
}

core::TypeId request_fingerprint(const Request& req,
                                 core::TypeId graph_content,
                                 core::TypeInterner& interner) {
  // Only whitelisted per-op fields enter the fingerprint; anything else is
  // rejected rather than copied.  Copying arbitrary client keys would let a
  // request carry a literal "graph#content" field that overwrites the real
  // substituted content id and poisons the shared content-addressed cache.
  const auto allowed = [&](const std::string& k) {
    if (k == "radius")
      return req.op == "homogeneity" || req.op == "views" || req.op == "run";
    if (k == "problem") return req.op == "optimum";
    if (k == "algorithm") return req.op == "run";
    return false;
  };
  Json canonical = req.body.sorted_copy();
  Json key = Json::object();
  for (const auto& [k, v] : canonical.members()) {
    if (k == "id" || k == "deadline_ms") continue;
    if (k == "op") {
      key.set("op", v);
      continue;
    }
    if (k == "graph") {
      key.set("graph#content",
              Json::integer(static_cast<std::int64_t>(graph_content)));
      continue;
    }
    if (!allowed(k))
      throw std::invalid_argument("unexpected field \"" + k + "\" for op \"" +
                                  req.op + "\"");
    key.set(k, v);
  }
  // Frame with a prefix that no canonical-type key starts with, so query
  // fingerprints can never collide with interned neighbourhood types.
  return interner.intern("lapxd:q:" + key.dump());
}

std::string ok_response(std::optional<std::int64_t> id,
                        const std::string& result_payload) {
  Json env = Json::object();
  if (id) env.set("id", Json::integer(*id));
  env.set("ok", Json::boolean(true));
  std::string line = env.dump();
  // Splice the pre-serialized payload in, keeping cached bytes verbatim.
  line.pop_back();  // '}'
  line += ",\"result\":";
  line += result_payload;
  line += '}';
  return line;
}

std::string error_response(std::optional<std::int64_t> id, ErrorCode code,
                           const std::string& message) {
  Json env = Json::object();
  if (id) env.set("id", Json::integer(*id));
  env.set("ok", Json::boolean(false));
  env.set("code", Json::string(error_code_name(code)));
  env.set("error", Json::string(message));
  return env.dump();
}

}  // namespace lapx::service
