#include "lapx/service/result_cache.hpp"

#include <utility>

namespace lapx::service {

ResultCache::ResultCache(Options opt) : opt_(opt) {
  if (opt_.max_entries == 0) opt_.max_entries = 1;
}

std::optional<std::string> ResultCache::get(core::TypeId fingerprint) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(fingerprint);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  it->second = lru_.begin();
  ++stats_.hits;
  return lru_.front().payload;
}

std::string ResultCache::put(core::TypeId fingerprint, std::string payload) {
  std::string resident;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (auto it = index_.find(fingerprint); it != index_.end()) {
      // First writer won; the loser adopts the resident bytes.
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second = lru_.begin();
      return lru_.front().payload;
    }
    stats_.bytes += payload.size();
    lru_.push_front(Slot{fingerprint, std::move(payload)});
    index_[fingerprint] = lru_.begin();
    ++stats_.insertions;
    while (lru_.size() > opt_.max_entries ||
           (stats_.bytes > opt_.max_bytes && lru_.size() > 1))
      evict_locked();
    stats_.entries = lru_.size();
    resident = lru_.front().payload;
  }
  // First-writer fill: journal it outside the lock (the hook does file
  // I/O) from the copy we return, so eviction races cannot bite.
  if (fill_hook_) fill_hook_(fingerprint, resident);
  return resident;
}

void ResultCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::vector<std::pair<core::TypeId, std::string>> ResultCache::entries()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<core::TypeId, std::string>> out;
  out.reserve(lru_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it)
    out.emplace_back(it->key, it->payload);
  return out;
}

void ResultCache::evict_locked() {
  const Slot& victim = lru_.back();
  stats_.bytes -= victim.payload.size();
  index_.erase(victim.key);
  lru_.pop_back();
  ++stats_.evictions;
  stats_.entries = lru_.size();
}

}  // namespace lapx::service
