#include "lapx/group/homogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <numeric>
#include <stdexcept>

#include "lapx/graph/properties.hpp"

namespace lapx::group {

namespace {

// Builds the canonical ordered type of the radius-r ball around `center` in
// the Cayley graph of `group` w.r.t. `gens`, using only group arithmetic.
// The linear order is the positive-cone order on representative tuples.
std::string ball_type_by_arithmetic(const WreathGroup& group,
                                    const std::vector<Elem>& gens,
                                    const Elem& center, int r, int level) {
  std::map<Elem, int> dist;
  std::deque<Elem> queue{center};
  dist[center] = 0;
  std::vector<Elem> members{center};
  while (!queue.empty()) {
    Elem g = queue.front();
    queue.pop_front();
    const int dg = dist.at(g);
    if (dg == r) continue;
    auto visit = [&](const Elem& h) {
      if (dist.emplace(h, dg + 1).second) {
        queue.push_back(h);
        members.push_back(h);
      }
    };
    for (const Elem& s : gens) {
      visit(group.multiply(g, s));
      visit(group.multiply(g, group.inverse(s)));
    }
  }
  // Index members; build the induced sub-digraph.
  std::map<Elem, int> index;
  for (std::size_t i = 0; i < members.size(); ++i)
    index[members[i]] = static_cast<int>(i);
  graph::LDigraph mini(static_cast<graph::Vertex>(members.size()),
                       static_cast<graph::Label>(gens.size()));
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t si = 0; si < gens.size(); ++si) {
      const Elem h = group.multiply(members[i], gens[si]);
      auto it = index.find(h);
      if (it != index.end())
        mini.add_arc(static_cast<graph::Vertex>(i),
                     static_cast<graph::Vertex>(it->second),
                     static_cast<graph::Label>(si));
    }
  }
  // Cone-order ranks.
  std::vector<int> order_idx(members.size());
  std::iota(order_idx.begin(), order_idx.end(), 0);
  std::sort(order_idx.begin(), order_idx.end(), [&](int a, int b) {
    return cone_less(level, members[a], members[b]);
  });
  order::Keys keys(members.size());
  for (std::size_t pos = 0; pos < order_idx.size(); ++pos)
    keys[order_idx[pos]] = static_cast<std::int64_t>(pos);
  return order::ordered_ball_type(mini, keys,
                                  static_cast<graph::Vertex>(index.at(center)),
                                  r);
}

}  // namespace

std::optional<HomogeneousSpec> design_homogeneous(int k, int r, int max_level,
                                                  std::mt19937_64& rng) {
  auto found = find_generators(k, 2 * r + 1, max_level, rng);
  if (!found) return std::nullopt;
  HomogeneousSpec spec;
  spec.k = k;
  spec.r = r;
  spec.level = found->level;
  spec.generators = found->generators;
  spec.m = 0;  // caller chooses the cut modulus
  return spec;
}

std::string tau_star_type(const HomogeneousSpec& spec) {
  const WreathGroup u = spec.infinite_group();
  return ball_type_by_arithmetic(u, spec.generators, u.identity(), spec.r,
                                 spec.level);
}

std::string local_type(const HomogeneousSpec& spec, const Elem& center) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const WreathGroup h = spec.finite_group();
  return ball_type_by_arithmetic(h, spec.generators, center, spec.r,
                                 spec.level);
}

double sampled_homogeneity(const HomogeneousSpec& spec, int samples,
                           std::mt19937_64& rng) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const WreathGroup h = spec.finite_group();
  const std::string tau = tau_star_type(spec);
  std::uniform_int_distribution<int> coord(0, spec.m - 1);
  int hits = 0;
  for (int i = 0; i < samples; ++i) {
    Elem g(static_cast<std::size_t>(h.dimension()));
    for (int& c : g) c = coord(rng);
    if (local_type(spec, g) == tau) ++hits;
  }
  return samples == 0 ? 0.0 : static_cast<double>(hits) / samples;
}

double inner_fraction_bound(const HomogeneousSpec& spec) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const double base =
      std::max(0.0, static_cast<double>(spec.m - 2 * spec.r) / spec.m);
  return std::pow(base, spec.finite_group().dimension());
}

HomogeneousGraph materialize_homogeneous(const HomogeneousSpec& spec,
                                         std::int64_t max_vertices,
                                         bool take_component) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const WreathGroup h = spec.finite_group();
  CayleyGraph cg = materialize_cayley(h, spec.generators, max_vertices);

  const std::int64_t n = h.size();
  std::vector<Elem> elements;
  elements.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) elements.push_back(h.decode(i));

  auto keys_for = [&](const std::vector<Elem>& elems) {
    std::vector<int> idx(elems.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
      return cone_less(spec.level, elems[a], elems[b]);
    });
    order::Keys keys(elems.size());
    for (std::size_t pos = 0; pos < idx.size(); ++pos)
      keys[idx[pos]] = static_cast<std::int64_t>(pos);
    return keys;
  };

  if (!take_component)
    return HomogeneousGraph{spec, std::move(cg.digraph), keys_for(elements),
                            std::move(elements)};

  // Pick the component with the highest density of tau*-type vertices
  // (the averaging argument at the end of the proof of Theorem 3.2).
  const std::string tau = tau_star_type(spec);
  order::Keys full_keys = keys_for(elements);
  const graph::Graph underlying = cg.digraph.underlying_graph();
  const std::vector<int> comp = graph::connected_components(underlying);
  const int num_comps = 1 + *std::max_element(comp.begin(), comp.end());
  std::vector<std::int64_t> total(num_comps, 0), good(num_comps, 0);
  for (graph::Vertex v = 0; v < cg.digraph.num_vertices(); ++v) {
    ++total[comp[v]];
    if (order::ordered_ball_type(cg.digraph, full_keys, v, spec.r) == tau)
      ++good[comp[v]];
  }
  int best = 0;
  double best_density = -1.0;
  for (int c = 0; c < num_comps; ++c) {
    const double density = static_cast<double>(good[c]) / total[c];
    if (density > best_density) {
      best_density = density;
      best = c;
    }
  }
  // Extract the chosen component.
  graph::Vertex seed = 0;
  while (comp[seed] != best) ++seed;
  auto [sub, members] = graph::component_of(cg.digraph, seed);
  std::vector<Elem> sub_elements;
  sub_elements.reserve(members.size());
  for (graph::Vertex v : members) sub_elements.push_back(elements[v]);
  return HomogeneousGraph{spec, std::move(sub), keys_for(sub_elements),
                          std::move(sub_elements)};
}

}  // namespace lapx::group
