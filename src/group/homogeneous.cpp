#include "lapx/group/homogeneous.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <numeric>
#include <stdexcept>
#include <unordered_map>

#include "lapx/graph/properties.hpp"
#include "lapx/runtime/parallel.hpp"

namespace lapx::group {

namespace {

struct ElemHash {
  std::size_t operator()(const Elem& e) const {
    std::size_t h = 1469598103934665603ull;
    for (int c : e) {
      h ^= static_cast<std::size_t>(static_cast<unsigned>(c));
      h *= 1099511628211ull;
    }
    return h;
  }
};

// The ordered radius-r ball around `center` in the Cayley graph of `group`
// w.r.t. `gens`, built using only group arithmetic: the induced sub-digraph
// on the BFS ball (discovery order fixes the vertex numbering) with
// positive-cone keys.  The linear order is the cone order on representative
// tuples.
std::tuple<graph::LDigraph, order::Keys, graph::Vertex> ball_by_arithmetic(
    const WreathGroup& group, const std::vector<Elem>& gens,
    const Elem& center, int r, int level) {
  std::unordered_map<Elem, int, ElemHash> dist;
  std::deque<Elem> queue{center};
  dist[center] = 0;
  std::vector<Elem> members{center};
  while (!queue.empty()) {
    Elem g = queue.front();
    queue.pop_front();
    const int dg = dist.at(g);
    if (dg == r) continue;
    auto visit = [&](const Elem& h) {
      if (dist.emplace(h, dg + 1).second) {
        queue.push_back(h);
        members.push_back(h);
      }
    };
    for (const Elem& s : gens) {
      visit(group.multiply(g, s));
      visit(group.multiply(g, group.inverse(s)));
    }
  }
  // Index members; build the induced sub-digraph.
  std::unordered_map<Elem, int, ElemHash> index;
  index.reserve(members.size());
  for (std::size_t i = 0; i < members.size(); ++i)
    index[members[i]] = static_cast<int>(i);
  graph::LDigraph mini(static_cast<graph::Vertex>(members.size()),
                       static_cast<graph::Label>(gens.size()));
  for (std::size_t i = 0; i < members.size(); ++i) {
    for (std::size_t si = 0; si < gens.size(); ++si) {
      const Elem h = group.multiply(members[i], gens[si]);
      auto it = index.find(h);
      if (it != index.end())
        mini.add_arc(static_cast<graph::Vertex>(i),
                     static_cast<graph::Vertex>(it->second),
                     static_cast<graph::Label>(si));
    }
  }
  // Cone-order ranks.
  std::vector<int> order_idx(members.size());
  std::iota(order_idx.begin(), order_idx.end(), 0);
  std::sort(order_idx.begin(), order_idx.end(), [&](int a, int b) {
    return cone_less(level, members[a], members[b]);
  });
  order::Keys keys(members.size());
  for (std::size_t pos = 0; pos < order_idx.size(); ++pos)
    keys[order_idx[pos]] = static_cast<std::int64_t>(pos);
  return {std::move(mini), std::move(keys), graph::Vertex{0}};
}

std::string ball_type_by_arithmetic(const WreathGroup& group,
                                    const std::vector<Elem>& gens,
                                    const Elem& center, int r, int level) {
  const auto [mini, keys, root] =
      ball_by_arithmetic(group, gens, center, r, level);
  return order::ordered_ball_type(mini, keys, root, r);
}

// Interned variant; equal id <=> equal ball_type_by_arithmetic string.
core::TypeId ball_type_id_by_arithmetic(const WreathGroup& group,
                                        const std::vector<Elem>& gens,
                                        const Elem& center, int r, int level) {
  const auto [mini, keys, root] =
      ball_by_arithmetic(group, gens, center, r, level);
  return order::ordered_ball_type_id(mini, keys, root, r);
}

}  // namespace

std::optional<HomogeneousSpec> design_homogeneous(int k, int r, int max_level,
                                                  std::mt19937_64& rng) {
  auto found = find_generators(k, 2 * r + 1, max_level, rng);
  if (!found) return std::nullopt;
  HomogeneousSpec spec;
  spec.k = k;
  spec.r = r;
  spec.level = found->level;
  spec.generators = found->generators;
  spec.m = 0;  // caller chooses the cut modulus
  return spec;
}

std::string tau_star_type(const HomogeneousSpec& spec) {
  const WreathGroup u = spec.infinite_group();
  return ball_type_by_arithmetic(u, spec.generators, u.identity(), spec.r,
                                 spec.level);
}

std::string local_type(const HomogeneousSpec& spec, const Elem& center) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const WreathGroup h = spec.finite_group();
  return ball_type_by_arithmetic(h, spec.generators, center, spec.r,
                                 spec.level);
}

double sampled_homogeneity(const HomogeneousSpec& spec, int samples,
                           std::mt19937_64& rng) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const WreathGroup h = spec.finite_group();
  const WreathGroup u = spec.infinite_group();
  const core::TypeId tau = ball_type_id_by_arithmetic(
      u, spec.generators, u.identity(), spec.r, spec.level);
  // Draw all samples serially (the rng stream must not depend on the thread
  // count), then classify them in parallel comparing interned TypeIds.
  std::uniform_int_distribution<int> coord(0, spec.m - 1);
  std::vector<Elem> centers(static_cast<std::size_t>(samples),
                            Elem(static_cast<std::size_t>(h.dimension())));
  for (Elem& g : centers)
    for (int& c : g) c = coord(rng);
  const int hits = runtime::parallel_reduce(
      samples, 0,
      [&](std::int64_t i) {
        return ball_type_id_by_arithmetic(
                   h, spec.generators, centers[static_cast<std::size_t>(i)],
                   spec.r, spec.level) == tau
                   ? 1
                   : 0;
      },
      [](int a, int b) { return a + b; });
  return samples == 0 ? 0.0 : static_cast<double>(hits) / samples;
}

double inner_fraction_bound(const HomogeneousSpec& spec) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const double base =
      std::max(0.0, static_cast<double>(spec.m - 2 * spec.r) / spec.m);
  return std::pow(base, spec.finite_group().dimension());
}

HomogeneousGraph materialize_homogeneous(const HomogeneousSpec& spec,
                                         std::int64_t max_vertices,
                                         bool take_component) {
  if (spec.m <= 0) throw std::invalid_argument("spec.m not set");
  const WreathGroup h = spec.finite_group();
  CayleyGraph cg = materialize_cayley(h, spec.generators, max_vertices);

  const std::int64_t n = h.size();
  std::vector<Elem> elements;
  elements.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) elements.push_back(h.decode(i));

  auto keys_for = [&](const std::vector<Elem>& elems) {
    std::vector<int> idx(elems.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::sort(idx.begin(), idx.end(), [&](int a, int b) {
      return cone_less(spec.level, elems[a], elems[b]);
    });
    order::Keys keys(elems.size());
    for (std::size_t pos = 0; pos < idx.size(); ++pos)
      keys[idx[pos]] = static_cast<std::int64_t>(pos);
    return keys;
  };

  if (!take_component)
    return HomogeneousGraph{spec, std::move(cg.digraph), keys_for(elements),
                            std::move(elements)};

  // Pick the component with the highest density of tau*-type vertices
  // (the averaging argument at the end of the proof of Theorem 3.2).
  const WreathGroup u = spec.infinite_group();
  const core::TypeId tau = ball_type_id_by_arithmetic(
      u, spec.generators, u.identity(), spec.r, spec.level);
  order::Keys full_keys = keys_for(elements);
  const graph::Graph underlying = cg.digraph.underlying_graph();
  const std::vector<int> comp = graph::connected_components(underlying);
  const int num_comps = 1 + *std::max_element(comp.begin(), comp.end());
  const graph::Vertex n_vertices = cg.digraph.num_vertices();
  std::vector<core::TypeId> vids(static_cast<std::size_t>(n_vertices));
  runtime::parallel_for(n_vertices, [&](std::int64_t v) {
    vids[static_cast<std::size_t>(v)] = order::ordered_ball_type_id(
        cg.digraph, full_keys, static_cast<graph::Vertex>(v), spec.r);
  });
  std::vector<std::int64_t> total(num_comps, 0), good(num_comps, 0);
  for (graph::Vertex v = 0; v < n_vertices; ++v) {
    ++total[comp[v]];
    if (vids[static_cast<std::size_t>(v)] == tau) ++good[comp[v]];
  }
  int best = 0;
  double best_density = -1.0;
  for (int c = 0; c < num_comps; ++c) {
    const double density = static_cast<double>(good[c]) / total[c];
    if (density > best_density) {
      best_density = density;
      best = c;
    }
  }
  // Extract the chosen component.
  graph::Vertex seed = 0;
  while (comp[seed] != best) ++seed;
  auto [sub, members] = graph::component_of(cg.digraph, seed);
  std::vector<Elem> sub_elements;
  sub_elements.reserve(members.size());
  for (graph::Vertex v : members) sub_elements.push_back(elements[v]);
  return HomogeneousGraph{spec, std::move(sub), keys_for(sub_elements),
                          std::move(sub_elements)};
}

}  // namespace lapx::group
