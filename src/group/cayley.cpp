#include "lapx/group/cayley.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace lapx::group {

CayleyGraph materialize_cayley(const WreathGroup& group,
                               const std::vector<Elem>& generators,
                               std::int64_t max_vertices) {
  if (!group.finite())
    throw std::invalid_argument("cannot materialise an infinite group");
  const std::int64_t n = group.size();
  if (n > max_vertices)
    throw std::invalid_argument("group too large to materialise: " +
                                std::to_string(n));
  std::set<Elem> seen;
  for (const Elem& s : generators) {
    if (group.is_identity(s))
      throw std::invalid_argument("identity in generator set");
    if (!seen.insert(s).second)
      throw std::invalid_argument("duplicate generator");
  }
  CayleyGraph cg{group, generators,
                 graph::LDigraph(static_cast<graph::Vertex>(n),
                                 static_cast<graph::Label>(generators.size()))};
  for (std::int64_t i = 0; i < n; ++i) {
    const Elem g = group.decode(i);
    for (std::size_t si = 0; si < generators.size(); ++si) {
      const Elem h = group.multiply(g, generators[si]);
      cg.digraph.add_arc(static_cast<graph::Vertex>(i),
                         static_cast<graph::Vertex>(group.encode(h)),
                         static_cast<graph::Label>(si));
    }
  }
  return cg;
}

namespace {

// DFS over reduced words.  Letters 0..k-1 are generators, k..2k-1 their
// inverses; letter x backtracks letter y iff x == inverse_of(y).
bool dfs_words(const WreathGroup& group, const std::vector<Elem>& letters,
               const Elem& current, int last_letter, int remaining,
               bool& found_identity) {
  const int total = static_cast<int>(letters.size());
  const int k = total / 2;
  for (int letter = 0; letter < total; ++letter) {
    if (last_letter >= 0) {
      const int inverse = last_letter < k ? last_letter + k : last_letter - k;
      if (letter == inverse) continue;  // not reduced
    }
    const Elem next = group.multiply(current, letters[letter]);
    if (group.is_identity(next)) {
      found_identity = true;
      return true;
    }
    if (remaining > 1 &&
        dfs_words(group, letters, next, letter, remaining - 1, found_identity))
      return true;
  }
  return false;
}

std::vector<Elem> letters_for(const WreathGroup& group,
                              const std::vector<Elem>& generators) {
  std::vector<Elem> letters = generators;
  for (const Elem& s : generators) letters.push_back(group.inverse(s));
  return letters;
}

}  // namespace

bool girth_exceeds(const WreathGroup& group,
                   const std::vector<Elem>& generators, int max_len) {
  if (max_len < 1) return true;
  for (const Elem& s : generators)
    if (group.is_identity(s)) return false;
  bool found = false;
  dfs_words(group, letters_for(group, generators), group.identity(), -1,
            max_len, found);
  return !found;
}

int word_girth(const WreathGroup& group, const std::vector<Elem>& generators,
               int cap) {
  for (int g = 1; g <= cap; ++g) {
    // Exact: the shortest identity word has length g iff length <= g finds
    // one but length <= g-1 does not; scanning upward returns the first hit.
    bool found = false;
    dfs_words(group, letters_for(group, generators), group.identity(), -1, g,
              found);
    if (found) return g;
  }
  return cap + 1;
}

std::optional<GeneratorSet> find_generators(int k, int min_girth_exclusive,
                                            int max_level,
                                            std::mt19937_64& rng,
                                            int attempts_per_level) {
  if (k < 1) throw std::invalid_argument("need k >= 1");
  for (int level = 2; level <= max_level; ++level) {
    const WreathGroup w(level, 2);
    const int d = w.dimension();
    std::uniform_int_distribution<int> bit(0, 1);
    for (int attempt = 0; attempt < attempts_per_level; ++attempt) {
      std::set<Elem> set;
      int guard = 0;
      while (static_cast<int>(set.size()) < k && guard++ < 100 * k) {
        Elem s(static_cast<std::size_t>(d));
        for (int i = 0; i < d; ++i) s[i] = bit(rng);
        if (!w.is_identity(s)) set.insert(s);
      }
      if (static_cast<int>(set.size()) < k) break;
      std::vector<Elem> gens(set.begin(), set.end());
      if (girth_exceeds(w, gens, min_girth_exclusive))
        return GeneratorSet{level, gens};
    }
  }
  return std::nullopt;
}

}  // namespace lapx::group
