#include "lapx/group/wreath.hpp"

#include <limits>
#include <sstream>

namespace lapx::group {

WreathGroup::WreathGroup(int level, int modulus)
    : level_(level), modulus_(modulus) {
  if (level < 1 || level > 24) throw std::invalid_argument("bad level");
  if (modulus != 0 && (modulus < 2 || modulus % 2 != 0))
    throw std::invalid_argument("modulus must be 0 (infinite) or even >= 2");
}

std::int64_t WreathGroup::size() const {
  if (!finite()) throw std::logic_error("infinite family has no size");
  std::int64_t n = 1;
  for (int i = 0; i < dimension(); ++i) {
    if (n > std::numeric_limits<std::int64_t>::max() / modulus_)
      throw std::overflow_error("group too large");
    n *= modulus_;
  }
  return n;
}

bool WreathGroup::is_identity(const Elem& a) const {
  check(a);
  for (int x : a)
    if (x != 0) return false;
  return true;
}

int WreathGroup::add_coord(int x, int y) const {
  if (modulus_ == 0) return x + y;
  int z = (x + y) % modulus_;
  if (z < 0) z += modulus_;
  return z;
}

void WreathGroup::mul_block(int level, const int* a, const int* b,
                            int* out) const {
  if (level == 1) {
    out[0] = add_coord(a[0], b[0]);
    return;
  }
  const int d = (1 << (level - 1)) - 1;  // block size of the level below
  const int c = a[2 * d];
  const bool swap = ((c % 2) + 2) % 2 == 1;
  const int* b_first = swap ? b + d : b;
  const int* b_second = swap ? b : b + d;
  mul_block(level - 1, a, b_first, out);
  mul_block(level - 1, a + d, b_second, out + d);
  out[2 * d] = add_coord(a[2 * d], b[2 * d]);
}

void WreathGroup::inv_block(int level, const int* a, int* out) const {
  if (level == 1) {
    out[0] = modulus_ == 0 ? -a[0] : (a[0] == 0 ? 0 : modulus_ - a[0]);
    return;
  }
  const int d = (1 << (level - 1)) - 1;
  const int c = a[2 * d];
  const bool swap = ((c % 2) + 2) % 2 == 1;
  // (a, b, c)^{-1} = ((-c) . (a^{-1}, b^{-1}), -c); -c has c's parity.
  if (swap) {
    inv_block(level - 1, a + d, out);      // b^{-1} into first block
    inv_block(level - 1, a, out + d);      // a^{-1} into second block
  } else {
    inv_block(level - 1, a, out);
    inv_block(level - 1, a + d, out + d);
  }
  out[2 * d] = modulus_ == 0 ? -c : (c == 0 ? 0 : modulus_ - c);
}

Elem WreathGroup::multiply(const Elem& a, const Elem& b) const {
  check(a);
  check(b);
  Elem out(static_cast<std::size_t>(dimension()));
  mul_block(level_, a.data(), b.data(), out.data());
  return out;
}

Elem WreathGroup::inverse(const Elem& a) const {
  check(a);
  Elem out(static_cast<std::size_t>(dimension()));
  inv_block(level_, a.data(), out.data());
  return out;
}

Elem WreathGroup::power(const Elem& a, long long k) const {
  Elem base = k < 0 ? inverse(a) : a;
  unsigned long long e =
      k < 0 ? static_cast<unsigned long long>(-(k + 1)) + 1ULL
            : static_cast<unsigned long long>(k);
  Elem result = identity();
  while (e > 0) {
    if (e & 1ULL) result = multiply(result, base);
    base = multiply(base, base);
    e >>= 1;
  }
  return result;
}

long long WreathGroup::order_of(const Elem& a) const {
  if (!finite()) throw std::logic_error("order_of needs a finite family");
  Elem x = a;
  long long order = 1;
  while (!is_identity(x)) {
    x = multiply(x, a);
    ++order;
    if (order > size()) throw std::logic_error("order exceeds group size");
  }
  return order;
}

Elem WreathGroup::reduce_mod(const Elem& a, int m) {
  Elem out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    int z = a[i] % m;
    if (z < 0) z += m;
    out[i] = z;
  }
  return out;
}

std::int64_t WreathGroup::encode(const Elem& a) const {
  if (!finite()) throw std::logic_error("encode needs a finite family");
  check(a);
  std::int64_t x = 0;
  for (int i = dimension(); i-- > 0;) x = x * modulus_ + a[i];
  return x;
}

Elem WreathGroup::decode(std::int64_t index) const {
  if (!finite()) throw std::logic_error("decode needs a finite family");
  Elem a(static_cast<std::size_t>(dimension()));
  for (int i = 0; i < dimension(); ++i) {
    a[i] = static_cast<int>(index % modulus_);
    index /= modulus_;
  }
  if (index != 0) throw std::out_of_range("index out of range");
  return a;
}

void WreathGroup::check(const Elem& a) const {
  if (static_cast<int>(a.size()) != dimension())
    throw std::invalid_argument("element dimension mismatch");
  if (finite()) {
    for (int x : a)
      if (x < 0 || x >= modulus_)
        throw std::invalid_argument("coordinate out of [0, m)");
  }
}

std::string WreathGroup::to_string(const Elem& a) const {
  std::ostringstream os;
  os << "(";
  for (std::size_t i = 0; i < a.size(); ++i)
    os << a[i] << (i + 1 < a.size() ? "," : "");
  os << ")";
  return os.str();
}

bool in_positive_cone(const Elem& a) {
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != 0) return a[i] > 0;
  }
  return false;  // the identity is not in P
}

bool cone_less(int level, const Elem& a, const Elem& b) {
  const WreathGroup u(level, 0);
  return in_positive_cone(u.multiply(u.inverse(a), b));
}

}  // namespace lapx::group
