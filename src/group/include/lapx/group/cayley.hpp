#pragma once
// Cayley graphs C(G, S) of the wreath-like groups, girth certificates via
// reduced words, and generator-set search (Section 5.1 and Theorem 5.1).
//
// The Cayley graph C(G, S) has the group elements as vertices and an
// outgoing arc g -> g s labelled by the index of s, for each s in S.  It is
// an S-digraph in the paper's sense; 1 not in S means no self-loops.  S need
// not generate G, so C(G, S) may be disconnected.
//
// Girth via words: by vertex-transitivity, the girth of C(G, S) equals the
// length of the shortest nonempty *reduced* word over S u S^{-1} (no letter
// immediately followed by its inverse) that evaluates to the identity.  So
// "girth > g" is certified by enumerating all reduced words of length <= g.
// Because reduction mod 2 is a homomorphism onto the level's W-family, a
// certificate computed in W transfers to H_m for every even m and to U
// (lifts only increase girth).

#include <cstdint>
#include <optional>
#include <random>
#include <vector>

#include "lapx/graph/digraph.hpp"
#include "lapx/group/wreath.hpp"

namespace lapx::group {

/// A materialised Cayley graph of a finite wreath-family group.
struct CayleyGraph {
  WreathGroup group;
  std::vector<Elem> generators;
  graph::LDigraph digraph;  ///< vertex i is the element with encode() == i
};

/// Materialises C(group, S).  Throws if group.size() > max_vertices (guard
/// against the exponential m^d blow-up) or if S contains the identity or
/// duplicate elements.
CayleyGraph materialize_cayley(const WreathGroup& group,
                               const std::vector<Elem>& generators,
                               std::int64_t max_vertices);

/// True iff no nonempty reduced word of length <= max_len over
/// S u S^{-1} evaluates to the identity, i.e. girth(C(group, S)) > max_len.
/// Works for finite and infinite (modulus 0) families alike.
bool girth_exceeds(const WreathGroup& group, const std::vector<Elem>& generators,
                   int max_len);

/// The exact girth of C(group, S), capped: returns cap + 1 if the girth
/// exceeds `cap` (word enumeration is exponential in the bound).
int word_girth(const WreathGroup& group, const std::vector<Elem>& generators,
               int cap);

/// A generator set together with the level it lives at.  Generators have
/// coordinates in {0, 1}, so the same tuples are valid elements of W_level,
/// of H_level(m) for every even m, and of U_level.
struct GeneratorSet {
  int level = 0;
  std::vector<Elem> generators;
};

/// Searches for k generators in W_level (level = 2..max_level) such that
/// girth(C(W_level, S)) > min_girth_exclusive.  Tries levels in increasing
/// order; within a level first a deterministic seed pool, then random
/// subsets.  Returns std::nullopt if no certificate is found.
std::optional<GeneratorSet> find_generators(int k, int min_girth_exclusive,
                                            int max_level,
                                            std::mt19937_64& rng,
                                            int attempts_per_level = 4000);

}  // namespace lapx::group
