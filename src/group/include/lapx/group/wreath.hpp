#pragma once
// The iterated wreath-like group families of Section 5.2.
//
// The paper defines three families by the same recursion
//
//    H_1 = Z_m,   W_1 = Z_2,   U_1 = Z,
//    H_{i+1} = H_i^2 x| Z_m,   W_{i+1} = W_i^2 x| Z_2,   U_{i+1} = U_i^2 x| Z,
//
// where the cyclic factor acts on the direct square by swapping the two
// coordinates iff the acting element is odd.  The underlying set of a level-i
// element is a flat tuple of d(i) = 2^i - 1 integers; we lay an element of
// level i+1 out as [a-block | b-block | c] with c the cyclic coordinate.
//
// A single class represents all three families: modulus m = 0 gives U_i
// (coordinates range over Z), m = 2 gives W_i, and any even m >= 2 gives H_i.
// Coordinate-wise reduction mod m is then exactly the homomorphism
// psi_i : U_i -> H_i (resp. phi_i : U_i -> W_i) of the paper's commuting
// diagram -- reduction commutes with the group law because the law only uses
// addition and the parity of c.
//
// The left-invariant linear order on U_i is given by the positive cone
//    P = { u != 1 : the last nonzero coordinate of u is positive },
// i.e. u < v iff u^{-1} v in P (Section 5.2, "Linear order").  The finite
// groups H_i are ordered by restricting < to the representative tuples
// [0, m)^d, exactly as in the paper ("Transferring the linear order").

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace lapx::group {

/// A group element: flat tuple of d(level) coordinates.
using Elem = std::vector<int>;

class WreathGroup {
 public:
  /// level >= 1; modulus 0 (the infinite family U) or an even number >= 2.
  WreathGroup(int level, int modulus);

  int level() const { return level_; }
  int modulus() const { return modulus_; }

  /// Number of coordinates d(level) = 2^level - 1.
  int dimension() const { return (1 << level_) - 1; }

  /// True if the family is finite (modulus > 0).
  bool finite() const { return modulus_ > 0; }

  /// Number of elements m^d; throws for the infinite family or on overflow.
  std::int64_t size() const;

  Elem identity() const { return Elem(static_cast<std::size_t>(dimension()), 0); }

  bool is_identity(const Elem& a) const;

  /// Group law (see the recursion above).
  Elem multiply(const Elem& a, const Elem& b) const;

  /// Inverse: (a, b, c)^{-1} = (c-permuted (a^{-1}, b^{-1}), -c).
  Elem inverse(const Elem& a) const;

  /// a^k by repeated squaring (k may be negative).
  Elem power(const Elem& a, long long k) const;

  /// Multiplicative order of a (finite families only; brute force).
  long long order_of(const Elem& a) const;

  /// Coordinate-wise reduction into [0, m): the homomorphism onto the
  /// modulus-m family at the same level.
  static Elem reduce_mod(const Elem& a, int m);

  /// Mixed-radix index of a finite-family element (coordinates in [0, m)).
  std::int64_t encode(const Elem& a) const;

  /// Inverse of encode().
  Elem decode(std::int64_t index) const;

  /// Validates coordinate ranges ([0, m) for finite families).
  void check(const Elem& a) const;

  std::string to_string(const Elem& a) const;

 private:
  // Recursive group law on coordinate blocks.
  void mul_block(int level, const int* a, const int* b, int* out) const;
  void inv_block(int level, const int* a, int* out) const;
  int add_coord(int x, int y) const;

  int level_;
  int modulus_;
};

/// Positive-cone comparison *in the infinite group U*: treats the tuples as
/// U-elements (whatever their coordinate ranges), computes w = a^{-1} b in U
/// at the given level, and returns true iff the last nonzero coordinate of w
/// is positive.  Restricting this to representative tuples in [0, m)^d is the
/// paper's order on the finite groups H_i.
bool cone_less(int level, const Elem& a, const Elem& b);

/// The positive-cone test itself: true iff a != 1 and the last nonzero
/// coordinate of a is positive.
bool in_positive_cone(const Elem& a);

}  // namespace lapx::group
