#pragma once
// Theorem 3.2: finite 2k-regular (1-eps, r)-homogeneous graphs of girth
// > 2r + 1, constructed from Cayley graphs of the wreath-like families.
//
// Pipeline (mirrors the paper's proof):
//  1. find_generators() locates a level j and a k-set S in W_j whose Cayley
//     graph has girth > 2r + 1 (our constructive stand-in for the
//     Gamburd et al. random-Cayley-graph theorem; see DESIGN.md).
//  2. The same coordinate tuples are read as elements of U_j and of H_j(m).
//     C(U_j, S) with the positive-cone order is (1, infinity)-homogeneous:
//     left multiplication is an order-preserving automorphism group acting
//     transitively, so all ordered neighbourhoods are isomorphic; tau* is
//     this common type.
//  3. Cutting down to H_j(m) (coordinates mod m) keeps every vertex whose
//     radius-r ball avoids coordinate wrap-around at type tau*; the inner
//     cube [r, m-1-r]^d gives the analytic bound (1 - 2r/m)^d on the
//     homogeneous fraction, which tends to 1 as m grows.
//
// Because |H_j(m)| = m^(2^j - 1) explodes, two measurement paths exist:
//  * materialize_homogeneous(): the full finite ordered graph (for moderate
//    m); feeds the lift/simulation machinery.
//  * local_type()/sampled_homogeneity(): evaluates the ordered radius-r
//    neighbourhood type of a single vertex by pure group arithmetic, so the
//    homogeneous fraction can be estimated for astronomically large m.

#include <cstdint>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "lapx/graph/digraph.hpp"
#include "lapx/group/cayley.hpp"
#include "lapx/group/wreath.hpp"
#include "lapx/order/homogeneity.hpp"

namespace lapx::group {

/// Full parameter set of a Theorem 3.2 instance.
struct HomogeneousSpec {
  int k = 0;      ///< number of generators; the graph is 2k-regular
  int r = 0;      ///< target neighbourhood radius (girth > 2r + 1)
  int level = 0;  ///< wreath level j
  int m = 0;      ///< cut modulus (even); larger m => larger homogeneous
                  ///< fraction
  std::vector<Elem> generators;  ///< S, coordinates in {0, 1}

  WreathGroup finite_group() const { return WreathGroup(level, m); }
  WreathGroup infinite_group() const { return WreathGroup(level, 0); }
};

/// A materialised ordered homogeneous graph (H, <).
struct HomogeneousGraph {
  HomogeneousSpec spec;
  graph::LDigraph digraph;
  order::Keys keys;             ///< positive-cone order ranks
  std::vector<Elem> elements;   ///< vertex -> group element
};

/// Step 1: chooses level and generators for the requested k and r.
std::optional<HomogeneousSpec> design_homogeneous(int k, int r, int max_level,
                                                  std::mt19937_64& rng);

/// Steps 2-3 materialised: C(H_level(m), S) with cone-order keys.
/// If take_component, restricts to the connected component with the highest
/// density of tau*-type vertices (the paper's final averaging step).
HomogeneousGraph materialize_homogeneous(const HomogeneousSpec& spec,
                                         std::int64_t max_vertices,
                                         bool take_component);

/// The homogeneity type tau*: canonical encoding of the ordered radius-r
/// neighbourhood of the identity in C(U_level, S) with the cone order.
/// Independent of m (Theorem 3.2 claim 1).
std::string tau_star_type(const HomogeneousSpec& spec);

/// Canonical encoding of the ordered radius-r neighbourhood of `center`
/// in C(H_level(m), S), computed by local group arithmetic only.
std::string local_type(const HomogeneousSpec& spec, const Elem& center);

/// Estimates the fraction of tau*-type vertices by sampling.
double sampled_homogeneity(const HomogeneousSpec& spec, int samples,
                           std::mt19937_64& rng);

/// The paper's analytic lower bound (m - 2r)^d / m^d on the tau*-fraction
/// (clamped to [0, 1]).
double inner_fraction_bound(const HomogeneousSpec& spec);

}  // namespace lapx::group
