// E5 -- Section 5 / Theorem 3.2: homogeneous graphs of large girth exist.
// The constructed C(H_j(m), S) is 2k-regular, has measured girth > 2r + 1,
// its tau*-fraction beats the analytic bound (m - 2r)^d / m^d and tends to
// 1 as m grows, and the homogeneity type is independent of m.

#include <random>

#include "bench_common.hpp"
#include "lapx/graph/properties.hpp"
#include "lapx/group/homogeneous.hpp"
#include "lapx/order/homogeneity.hpp"

namespace {

using namespace lapx;
using group::HomogeneousSpec;

void print_tables() {
  bench::print_header(
      "E5: homogeneous graphs of large girth, Theorem 3.2",
      "for any k, r, eps: a finite 2k-regular (1-eps, r)-homogeneous graph "
      "of girth > 2r+1 exists; tau* independent of eps");

  std::mt19937_64 rng(5);

  bench::print_row({"k", "r", "level j", "m", "|H|", "girth>2r+1",
                    "tau* fraction", "bound"});
  for (const auto& [k, r] : {std::pair{1, 1}, {1, 2}, {1, 3}, {2, 1}}) {
    auto spec = group::design_homogeneous(k, r, 5, rng);
    if (!spec) {
      bench::print_row({std::to_string(k), std::to_string(r), "-", "-", "-",
                        "SEARCH FAILED", "-", "-"});
      continue;
    }
    for (int m : {4, 6, 8}) {
      spec->m = m;
      const auto group = spec->finite_group();
      std::string size, girth_ok, fraction;
      if (group.size() <= (1 << 17)) {
        const auto h = group::materialize_homogeneous(*spec, 1 << 17, false);
        const int girth = graph::girth(h.digraph);
        girth_ok = (girth == graph::kInfiniteGirth || girth > 2 * r + 1)
                       ? "yes"
                       : "NO(" + std::to_string(girth) + ")";
        size = std::to_string(group.size());
        // Exact tau*-fraction over all vertices.
        const std::string tau = group::tau_star_type(*spec);
        std::int64_t hits = 0;
        for (const auto& e : h.elements)
          if (group::local_type(*spec, e) == tau) ++hits;
        fraction = bench::fmt(static_cast<double>(hits) / group.size());
      } else {
        size = std::to_string(group.size()) + "*";
        girth_ok = "certified";  // word certificate in W_j transfers
        fraction =
            bench::fmt(group::sampled_homogeneity(*spec, 400, rng)) + "~";
      }
      bench::print_row({std::to_string(k), std::to_string(r),
                        std::to_string(spec->level), std::to_string(m), size,
                        girth_ok, fraction,
                        bench::fmt(group::inner_fraction_bound(*spec))});
    }
  }
  std::printf("  (* = not materialised; ~ = sampled estimate, 400 vertices)\n");

  // tau* independence of m (Theorem 3.2, claim 1).
  {
    auto spec = group::design_homogeneous(1, 2, 4, rng);
    if (spec) {
      const std::string tau = group::tau_star_type(*spec);
      bool stable = true;
      // Inner vertices exist once [r, m-1-r] is nonempty, i.e. m >= 2r + 2.
      for (int m : {8, 16, 32, 64}) {
        spec->m = m;
        group::Elem centre(
            static_cast<std::size_t>(spec->finite_group().dimension()), m / 2);
        stable &= group::local_type(*spec, centre) == tau;
      }
      bench::check(stable,
                   "tau* (type of inner vertices) is the same for m = 8..64");
    }
  }

  // eps -> 0: sampled fraction grows towards 1 with m, far beyond what can
  // be materialised.
  {
    auto spec = group::design_homogeneous(1, 2, 4, rng);
    if (spec) {
      std::printf("\nConvergence for k=1, r=2 (sampled, 300 vertices):\n");
      bench::print_row({"m", "sampled tau* fraction", "analytic bound"});
      for (int m : {8, 16, 32, 64, 128}) {
        spec->m = m;
        bench::print_row({std::to_string(m),
                          bench::fmt(group::sampled_homogeneity(*spec, 300, rng)),
                          bench::fmt(group::inner_fraction_bound(*spec))});
      }
    }
  }
}

void BM_GeneratorSearch(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::mt19937_64 rng(17);
  for (auto _ : state)
    benchmark::DoNotOptimize(group::design_homogeneous(k, 1, 4, rng));
}
BENCHMARK(BM_GeneratorSearch)->Arg(1)->Arg(2);

void BM_LocalTypeEvaluation(benchmark::State& state) {
  std::mt19937_64 rng(19);
  auto spec = group::design_homogeneous(1, 2, 4, rng);
  if (!spec) {
    state.SkipWithError("no generators");
    return;
  }
  spec->m = 1 << 10;  // astronomically large group, local arithmetic only
  const auto group_obj = spec->finite_group();
  std::uniform_int_distribution<int> coord(0, spec->m - 1);
  for (auto _ : state) {
    group::Elem e(static_cast<std::size_t>(group_obj.dimension()));
    for (int& c : e) c = coord(rng);
    benchmark::DoNotOptimize(group::local_type(*spec, e));
  }
}
BENCHMARK(BM_LocalTypeEvaluation);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
