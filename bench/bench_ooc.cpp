// E20: out-of-core refinement -- streaming over an mmap'd LAPXOOC1 file
// vs the in-memory engine at equal hardware.
//
// The lower-bound experiments scale with the lift order, and the instance
// eventually outgrows RAM.  The ooc format (graph/ooc.hpp) persists the
// adjacency AND the precomputed step CSR, so RefineState can run the
// universal-cover recurrence straight off the mapping while an LRU chunk
// manager keeps tracked residency under a configured budget.  This bench
// writes a lift whose file is >= 2x the budget, streams refinement over it
// at 1 and 8 threads, and gates on what the design promises:
//
//   * TypeIds byte-identical to the in-memory engine (same interner) at
//     every radius and thread count -- the format IS the engine's layout;
//   * the budget binds: evictions occurred and tracked residency stayed
//     at or under budget, yet identity still held (eviction only drops
//     pages; a later touch refaults them from the file);
//   * distinct-type counts (deterministic paper-facing quantities) match.
//
// Throughput (write, open+validate, stream vs in-memory refine) is
// recorded as phases -- informational, never gated.

#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.hpp"
#include "lapx/core/refine.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/lift.hpp"
#include "lapx/graph/ooc.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/runtime/parallel.hpp"

namespace {

using lapx::bench::check;
using lapx::bench::fmt;
using lapx::bench::phase;
using lapx::bench::print_header;
using lapx::bench::print_row;
using lapx::bench::value;
using lapx::core::RefineState;
using lapx::core::TypeId;
using lapx::core::TypeInterner;
using lapx::graph::LDigraph;
using lapx::graph::OocGraph;

constexpr int kRadius = 3;
constexpr int kLayers = 7000;  // 3x3 torus lift: n = 63000, 252000 steps
constexpr std::size_t kBudgetBytes = std::size_t{4} << 20;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_tables() {
  print_header(
      "E20  out-of-core refinement: mmap'd LAPXOOC1 vs in-memory",
      "streaming the universal-cover recurrence over an on-disk step CSR "
      "under a residency budget < file/2 yields byte-identical TypeIds at "
      "1 and 8 threads");

  phase("build-instance");
  std::mt19937_64 rng(2012);
  const LDigraph ld =
      lapx::graph::random_lift(
          lapx::graph::to_ldigraph(lapx::graph::torus({3, 3})), kLayers, rng)
          .graph;

  const std::string path =
      "/tmp/lapx-bench-ooc." + std::to_string(::getpid()) + ".lapxooc";
  phase("write-ooc");
  auto t0 = std::chrono::steady_clock::now();
  lapx::graph::write_ooc_graph(path, ld);
  const double write_s = seconds_since(t0);

  phase("open-validate");
  OocGraph::Options opt;
  opt.budget_bytes = kBudgetBytes;
  t0 = std::chrono::steady_clock::now();
  const OocGraph g(path, opt);
  const double open_s = seconds_since(t0);

  // stat the file through the mapping size the reader validated.
  const double file_mb =
      static_cast<double>(g.num_steps() * 24 + g.num_arcs() * 16 +
                          (static_cast<std::size_t>(g.num_vertices()) + 1) *
                              20 + 128) /
      (1 << 20);
  const double budget_mb = static_cast<double>(kBudgetBytes) / (1 << 20);
  std::printf("instance: lift %dx(3x3), n=%d, arcs=%zu, file %.1f MiB, "
              "budget %.1f MiB (write %.2fs, open+validate %.2fs)\n\n",
              kLayers, g.num_vertices(), g.num_arcs(), file_mb, budget_mb,
              write_s, open_s);
  check(file_mb >= 2.0 * budget_mb,
        "instance file >= 2x the residency budget");

  print_row({"threads", "in-memory s", "streaming s", "ratio", "evictions",
             "resident MiB"});
  bool ids_identical = true;
  std::size_t distinct = 0;
  const int old_threads = lapx::runtime::thread_count();
  for (const int threads : {1, 8}) {
    lapx::runtime::set_thread_count(threads);
    TypeInterner interner;

    phase("refine-in-memory");
    t0 = std::chrono::steady_clock::now();
    RefineState mem(ld, interner);
    const std::vector<TypeId> mem_ids = mem.types_at(kRadius);
    const double mem_s = seconds_since(t0);

    phase("refine-streaming");
    t0 = std::chrono::steady_clock::now();
    RefineState stream(g, interner);
    const std::vector<TypeId> stream_ids = stream.types_at(kRadius);
    const double stream_s = seconds_since(t0);

    for (int r = 0; r < kRadius; ++r)
      ids_identical = ids_identical && stream.types_at(r) == mem.types_at(r);
    ids_identical = ids_identical && stream_ids == mem_ids;
    distinct = mem.distinct_at(kRadius);

    const auto res = g.residency();
    print_row({std::to_string(threads), fmt(mem_s, 3), fmt(stream_s, 3),
               fmt(mem_s > 0 ? stream_s / mem_s : 0.0, 2) + "x",
               std::to_string(res.evictions),
               fmt(static_cast<double>(res.resident_bytes) / (1 << 20), 2)});
  }
  lapx::runtime::set_thread_count(old_threads);
  std::printf("\n");

  check(ids_identical,
        "streaming TypeIds byte-identical to in-memory at radius 0.." +
            std::to_string(kRadius) + ", threads 1 and 8");
  // Scheduling parity on the STREAMING path: the worklist's active-vertex
  // retirement must not change a single raw TypeId even when entry states
  // stream from the mmap'd file under eviction pressure.  Fresh interner
  // per run; equality is id-for-id, not just as partitions.
  phase("refine-streaming-sched-parity");
  const auto old_sched = lapx::core::refine_scheduling();
  lapx::core::set_refine_scheduling(lapx::core::RefineSched::kLegacy);
  TypeInterner li;
  RefineState legacy_sched(g, li);
  const std::vector<TypeId> legacy_ids = legacy_sched.types_at(kRadius);
  lapx::core::set_refine_scheduling(lapx::core::RefineSched::kWorklist);
  TypeInterner wi;
  RefineState worklist_sched(g, wi);
  const std::vector<TypeId> worklist_ids = worklist_sched.types_at(kRadius);
  lapx::core::set_refine_scheduling(old_sched);
  check(legacy_ids == worklist_ids,
        "worklist and dense scheduling agree id-for-id on the streaming "
        "path");

  const auto res = g.residency();
  check(res.evictions > 0, "residency budget forced evictions mid-round");
  check(res.resident_bytes <= res.budget_bytes,
        "tracked residency ended at or under the budget");

  // Deterministic paper-facing quantities for the regression gate; the
  // timings above stay in phases (informational).
  value("n", static_cast<double>(g.num_vertices()));
  value("arcs", static_cast<double>(g.num_arcs()));
  value("distinct_r3", static_cast<double>(distinct));
  value("budget_over_file",
        static_cast<double>(kBudgetBytes) / (file_mb * (1 << 20)));
  ::unlink(path.c_str());
  std::printf("\n");
}

void BM_StreamingRefine(benchmark::State& state) {
  std::mt19937_64 rng(2012);
  const LDigraph ld =
      lapx::graph::random_lift(
          lapx::graph::to_ldigraph(lapx::graph::torus({3, 3})), 800, rng)
          .graph;
  const std::string path =
      "/tmp/lapx-bm-ooc." + std::to_string(::getpid()) + ".lapxooc";
  lapx::graph::write_ooc_graph(path, ld);
  OocGraph::Options opt;
  opt.budget_bytes = std::size_t{256} << 10;
  const OocGraph g(path, opt);
  TypeInterner interner;
  RefineState(ld, interner).types_at(kRadius);  // warm the interner once
  for (auto _ : state) {
    RefineState stream(g, interner);
    benchmark::DoNotOptimize(stream.types_at(kRadius));
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_StreamingRefine);

void BM_InMemoryRefine(benchmark::State& state) {
  std::mt19937_64 rng(2012);
  const LDigraph ld =
      lapx::graph::random_lift(
          lapx::graph::to_ldigraph(lapx::graph::torus({3, 3})), 800, rng)
          .graph;
  TypeInterner interner;
  RefineState(ld, interner).types_at(kRadius);  // warm the interner once
  for (auto _ : state) {
    RefineState fresh(ld, interner);
    benchmark::DoNotOptimize(fresh.types_at(kRadius));
  }
}
BENCHMARK(BM_InMemoryRefine);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
