// E3 -- Figures 3, 4, 5: graph lifts, views and the complete tree.
//
//  * Figure 3: lifts have constant fibre size; the covering map validates.
//  * Figure 4: the view T(G, v) truncates to a tree whose arcs project to
//    arcs of G (a covering map of the truncation into G).
//  * Figure 5: the complete tree (T*, lambda) has
//    1 + sum_{i<=r} 2|L| (2|L|-1)^{i-1} nodes, realised by any 2|L|-regular
//    L-digraph of sufficient girth.

#include <random>

#include "bench_common.hpp"
#include "lapx/core/view.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/lift.hpp"
#include "lapx/graph/properties.hpp"

namespace {

using namespace lapx;

void print_tables() {
  bench::print_header("E3: lifts and views, Figures 3-5",
                      "covering maps validate; views are trees covering G; "
                      "|T*| = 1 + sum 2k(2k-1)^{i-1}");
  std::mt19937_64 rng(3);

  bench::print_row({"base", "lift degree", "covering map", "fibres equal"});
  for (int l : {2, 3, 5}) {
    const auto base = graph::directed_torus({3, 4});
    const auto lift = graph::random_lift(base, l, rng);
    std::string why;
    const bool ok = graph::is_covering_map(lift.graph, base, lift.phi, &why);
    const auto fibres = graph::fibre_sizes(lift.phi, base.num_vertices());
    bool equal = true;
    for (int f : fibres) equal &= f == l;
    bench::print_row({"torus(3,4)", std::to_string(l), ok ? "yes" : "NO",
                      equal ? "yes" : "NO"});
  }

  // Figure 4: views are trees; arcs project onto G.
  {
    const auto g = graph::directed_torus({4, 4});
    bool all_trees = true, all_project = true;
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
      const auto t = core::view(g, v, 2);
      // tree structure is implicit (parent pointers); verify projections:
      for (int i = 1; i < t.size(); ++i) {
        const auto& node = t.nodes[i];
        const auto& parent = t.nodes[node.parent];
        const auto target =
            node.via.outgoing
                ? g.out_neighbor(parent.image, node.via.label)
                : g.in_neighbor(parent.image, node.via.label);
        all_project &= target.has_value() && *target == node.image;
      }
    }
    bench::check(all_trees && all_project,
                 "view arcs project to G (phi is a covering map, Fig. 4c)");
  }

  // Figure 5: |T*| realised by high-girth 2k-regular digraphs.
  bench::print_row({"k", "r", "|T*| formula", "|view| measured"});
  for (const auto& [k, r] : {std::pair{1, 3}, {2, 2}, {3, 1}}) {
    // torus sides >= 2r+2 guarantee girth of underlying graph 4 > ... for
    // k = 1 use a long cycle; views are complete when each label is present
    // both ways at every node.
    core::ViewTree t;
    if (k == 1) {
      t = core::view(graph::directed_cycle(20), 0, r);
    } else {
      std::vector<int> dims(k, 7);
      t = core::view(graph::directed_torus(dims), 0, r);
    }
    bench::print_row({std::to_string(k), std::to_string(r),
                      std::to_string(core::complete_tree_size(k, r)),
                      std::to_string(t.size())});
  }

  // Views of a lift equal views of the base: the PO-information statement.
  {
    const auto base = graph::directed_torus({3, 5});
    const auto lift = graph::random_lift(base, 4, rng);
    bool equal = true;
    for (graph::Vertex v = 0; v < lift.graph.num_vertices(); ++v)
      equal &= core::view_type(core::view(lift.graph, v, 2)) ==
               core::view_type(core::view(base, lift.phi[v], 2));
    bench::check(equal, "view(H, v) == view(G, phi(v)) for all 60 lift nodes");
  }
}

void BM_RandomLift(benchmark::State& state) {
  const auto base = graph::directed_torus({8, 8});
  std::mt19937_64 rng(11);
  const int l = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(graph::random_lift(base, l, rng));
}
BENCHMARK(BM_RandomLift)->Arg(2)->Arg(8)->Arg(32);

void BM_CoveringMapCheck(benchmark::State& state) {
  const auto base = graph::directed_torus({8, 8});
  std::mt19937_64 rng(13);
  const auto lift = graph::random_lift(base, 8, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        graph::is_covering_map(lift.graph, base, lift.phi));
}
BENCHMARK(BM_CoveringMapCheck);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
