// E11 -- the round-based ground truth: r rounds of full-information message
// passing reconstruct exactly tau(T(G, v)), justifying the
// neighbourhood-oracle evaluation used everywhere else; plus engine
// throughput.

#include <random>

#include "bench_common.hpp"
#include "lapx/core/view.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/runtime/engine.hpp"
#include "lapx/runtime/gather.hpp"

namespace {

using namespace lapx;

void print_tables() {
  bench::print_header(
      "E11: message passing == neighbourhood oracle, Section 2",
      "after r rounds of full-information exchange every node's state "
      "determines exactly tau(T(G, v))");

  std::mt19937_64 rng(11);
  bench::print_row({"family", "n", "r", "all views match", "bytes/node"});
  struct Case {
    const char* name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"cycle", graph::cycle(64)});
  cases.push_back({"petersen", graph::petersen()});
  cases.push_back({"3-regular", graph::random_regular(64, 3, rng)});
  cases.push_back({"4-regular", graph::random_regular(64, 4, rng)});
  for (const auto& c : cases) {
    const auto pn = graph::PortNumbering::default_for(c.g);
    const auto orient = graph::Orientation::default_for(c.g);
    const int delta = c.g.max_degree();
    const auto ld = graph::to_ldigraph(c.g, pn, orient, delta);
    for (int r : {1, 2, 3}) {
      const auto knowledge =
          runtime::gather_full_information(c.g, pn, orient, r);
      bool all = true;
      std::size_t bytes = 0;
      for (graph::Vertex v = 0; v < c.g.num_vertices(); ++v) {
        all &= runtime::knowledge_view_type(knowledge[v], r, delta) ==
               core::view_type(core::view(ld, v, r));
        bytes += knowledge[v].serialize().size();
      }
      bench::print_row({c.name, std::to_string(c.g.num_vertices()),
                        std::to_string(r), all ? "yes" : "NO",
                        std::to_string(bytes / c.g.num_vertices())});
    }
  }
  std::printf(
      "  bytes/node grows ~Delta^r: the price of full information, and the\n"
      "  reason the library evaluates local algorithms through the oracle.\n");
}

void BM_EngineRound(benchmark::State& state) {
  std::mt19937_64 rng(13);
  const int n = static_cast<int>(state.range(0));
  const auto g = graph::random_regular(n, 4, rng);
  const auto pn = graph::PortNumbering::default_for(g);
  const auto orient = graph::Orientation::default_for(g);
  // Minimal echo program to time the engine itself.
  class Echo : public runtime::NodeProgram {
   public:
    void init(const runtime::NodeEnv& env) override { x_ = env.input; }
    runtime::Message message_for_port(int) const override {
      return std::to_string(x_);
    }
    void receive(const std::vector<runtime::Message>& inbox) override {
      for (const auto& m : inbox) x_ ^= std::stoll(m);
    }
    std::int64_t output() const override { return x_; }

   private:
    std::int64_t x_ = 0;
  };
  std::vector<std::int64_t> inputs(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(runtime::run_synchronous(
        g, pn, orient, [] { return std::make_unique<Echo>(); }, inputs, 4));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EngineRound)->Range(256, 16384)->Complexity();

void BM_FullInformationGather(benchmark::State& state) {
  std::mt19937_64 rng(17);
  const auto g = graph::random_regular(128, 3, rng);
  const auto pn = graph::PortNumbering::default_for(g);
  const auto orient = graph::Orientation::default_for(g);
  const int r = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        runtime::gather_full_information(g, pn, orient, r));
}
BENCHMARK(BM_FullInformationGather)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
