// E14 -- LP relaxations and integrality gaps (the Section 6.5 context:
// local LP approximation schemes and randomised rounding).
//
// nu <= nu_f = tau_f <= tau, with nu_f computed combinatorially through the
// bipartite double cover (a 2-lift!).  The experiment measures the gaps on
// the instance families of the paper: bipartite graphs have none (Koenig),
// odd cycles realise the extreme nu_f / nu -> 3/2 and tau / tau_f -> 3/2
// gaps, and rounding the half-integral cover reproduces the classic
// LP 2-approximation that local algorithms implement distributedly.

#include <random>

#include "bench_common.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/problems/exact.hpp"
#include "lapx/problems/fractional.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;
using namespace lapx::problems;

void print_tables() {
  bench::print_header(
      "E14: fractional relaxations and integrality gaps (Section 6.5)",
      "nu <= nu_f = tau_f <= tau; gaps vanish on bipartite graphs and reach "
      "3/2 on odd cycles; rounding gives the LP 2-approximation");

  std::mt19937_64 rng(14);
  bench::print_row({"instance", "nu", "nu_f", "tau_f", "tau", "rounded VC"});
  struct Case {
    std::string name;
    graph::Graph g;
  };
  std::vector<Case> cases;
  cases.push_back({"C5 (odd cycle)", graph::cycle(5)});
  cases.push_back({"C9 (odd cycle)", graph::cycle(9)});
  cases.push_back({"C8 (even cycle)", graph::cycle(8)});
  cases.push_back({"K4", graph::complete(4)});
  cases.push_back({"K_{3,3}", graph::complete_bipartite(3, 3)});
  cases.push_back({"Petersen", graph::petersen()});
  cases.push_back({"Q3", graph::hypercube(3)});
  cases.push_back({"3-regular n=16", graph::random_regular(16, 3, rng)});
  for (const auto& c : cases) {
    const std::size_t nu = max_matching_size(c.g);
    const std::size_t nu2 = fractional_matching_doubled(c.g);
    const std::size_t tau = min_vertex_cover_size(c.g);
    const auto rounded = round_up_vertex_cover(half_integral_vertex_cover(c.g));
    const auto sol = vertex_solution(rounded);
    const bool ok = vertex_cover().feasible(c.g, sol) &&
                    sol.size() <= 2 * tau;
    bench::print_row({c.name, std::to_string(nu), bench::fmt(nu2 / 2.0, 1),
                      bench::fmt(nu2 / 2.0, 1), std::to_string(tau),
                      std::to_string(sol.size()) + (ok ? "" : "(!)")});
  }

  std::printf("\ngap series on odd cycles (nu_f/nu and tau/tau_f -> 3/2... "
              "largest at C3):\n");
  bench::print_row({"n", "nu_f / nu", "tau / tau_f"});
  for (int n : {3, 5, 9, 17, 33}) {
    const auto g = graph::cycle(n);
    const double nu_f = fractional_matching_doubled(g) / 2.0;
    const double nu = static_cast<double>(max_matching_size(g));
    const double tau = static_cast<double>(min_vertex_cover_size(g));
    bench::print_row({std::to_string(n), bench::fmt(nu_f / nu),
                      bench::fmt(tau / nu_f)});
  }

  std::printf(
      "\nWhy this matters here: nu_f is computed on the bipartite double\n"
      "cover -- a 2-lift.  Fractional LP quantities are lift-invariant\n"
      "(per-fibre averaging), which is exactly why LP-based local\n"
      "algorithms sidestep the paper's integral lower bounds only up to\n"
      "the integrality gap.\n");
}

void BM_FractionalMatching(benchmark::State& state) {
  std::mt19937_64 rng(31);
  const auto g =
      graph::random_regular(static_cast<int>(state.range(0)), 3, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(fractional_matching_doubled(g));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_FractionalMatching)->Range(32, 512)->Complexity();

}  // namespace

LAPX_BENCH_MAIN(print_tables)
