// E10 -- the classical local approximability table of Section 1.4:
//
//   problem                  tight local factor       our PO algorithm
//   minimum vertex cover     2                        complement-of-minima
//                                                     via OI->PO (regular)
//   minimum edge cover       2                        mark-first-edge
//   minimum dominating set   Delta' + 1               take-all
//   maximum matching         no constant factor       (collapses in PO)
//   maximum independent set  no constant factor       (collapses in PO)
//   minimum edge dom. set    4 - 2/Delta'             mark-first-edge
//
// Measured ratios of the PO upper-bound algorithms against exact optima,
// plus the collapse of the maximisation problems on symmetric instances.

#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/oi.hpp"
#include "lapx/algorithms/po.hpp"
#include "lapx/core/simulate.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/problems/exact.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;

void print_tables() {
  bench::print_header(
      "E10: the approximability table, Section 1.4",
      "VC: 2; EC: 2; DS: Delta'+1; EDS: 4-2/Delta'; MaxM/MaxIS: no constant");

  std::mt19937_64 rng(10);
  bench::print_row({"problem", "instance", "alg size", "OPT", "ratio",
                    "tight bound"});

  for (int d : {2, 4}) {
    const int n = 16;
    const graph::Graph g =
        d == 2 ? graph::cycle(n) : graph::random_regular(n, d, rng);
    const auto ld = graph::to_ldigraph(g);
    const std::string inst =
        (d == 2 ? "C16" : "4-regular n=16");

    // Vertex cover: on regular graphs "all nodes" is a 2-approximation; we
    // use the simulated complement-of-minima PO algorithm, which marks all
    // nodes on symmetric instances and never fewer than that elsewhere.
    {
      const auto sol = problems::vertex_solution(
          core::run_po(ld, algorithms::take_all_po(), 0));
      const std::size_t opt = problems::min_vertex_cover_size(g);
      bench::print_row({"min vertex cover", inst, std::to_string(sol.size()),
                        std::to_string(opt),
                        bench::fmt(static_cast<double>(sol.size()) / opt),
                        "2"});
    }
    // Edge cover.
    {
      const auto sol = problems::edge_solution(
          core::run_po_edges(ld, algorithms::mark_first_edge_po(), 1));
      const std::size_t opt = problems::min_edge_cover_size(g);
      const bool ok = problems::edge_cover().feasible(g, sol);
      bench::print_row({"min edge cover", inst,
                        std::to_string(sol.size()) + (ok ? "" : "(!)"),
                        std::to_string(opt),
                        bench::fmt(static_cast<double>(sol.size()) / opt),
                        "2"});
    }
    // Dominating set.
    {
      const auto sol = problems::vertex_solution(
          core::run_po(ld, algorithms::take_all_po(), 0));
      const std::size_t opt = problems::min_dominating_set_size(g);
      const int dprime = 2 * (d / 2);
      bench::print_row({"min dominating set", inst,
                        std::to_string(sol.size()), std::to_string(opt),
                        bench::fmt(static_cast<double>(sol.size()) / opt),
                        std::to_string(dprime + 1)});
    }
    // Edge dominating set.
    {
      const auto sol = problems::edge_solution(
          core::run_po_edges(ld, algorithms::eds_mark_first_po(), 1));
      const std::size_t opt = problems::min_edge_dominating_set_size(g);
      const int dprime = 2 * (d / 2);
      const bool ok = problems::edge_dominating_set().feasible(g, sol);
      bench::print_row({"min edge dom. set", inst,
                        std::to_string(sol.size()) + (ok ? "" : "(!)"),
                        std::to_string(opt),
                        bench::fmt(static_cast<double>(sol.size()) / opt),
                        bench::fmt(4.0 - 2.0 / dprime, 2)});
    }
  }

  // The maximisation problems collapse in PO on symmetric instances: any
  // PO algorithm outputs a constant decision, so the solution is empty (or
  // infeasible) -- no constant-factor approximation exists.
  std::printf("\nMaximisation problems on the symmetric cycle C30:\n");
  {
    const auto g = graph::directed_cycle(30);
    const auto ord = core::TStarOrder::abelian(1, 2);
    const auto is_b = core::oi_to_po(algorithms::local_min_is_oi(), ord);
    const auto is_out = core::run_po(g, is_b, 2);
    std::size_t is_size = 0;
    for (bool bit : is_out) is_size += bit;
    bench::print_row({"max independent set", "C30 symmetric",
                      std::to_string(is_size), "15",
                      is_size == 0 ? "unbounded" : "?", "no constant"});
    const auto m_b =
        core::oi_to_po_edges(algorithms::greedy_matching_oi(1), ord);
    const auto m_out = problems::edge_solution(core::run_po_edges(g, m_b, 2));
    bench::print_row({"max matching", "C30 symmetric",
                      std::to_string(m_out.size()), "15",
                      m_out.size() == 0 ? "unbounded" : "?", "no constant"});
  }
  std::printf(
      "  -> both simulated algorithms output the empty set on the symmetric\n"
      "     instance: PO (hence, by the main theorem, local ID) algorithms\n"
      "     cannot approximate the maximisation problems.\n");
}

void BM_ExactSolvers(benchmark::State& state) {
  std::mt19937_64 rng(29);
  const auto g = graph::random_regular(static_cast<int>(state.range(0)), 3,
                                       rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problems::min_vertex_cover_size(g));
    benchmark::DoNotOptimize(problems::min_dominating_set_size(g));
  }
}
BENCHMARK(BM_ExactSolvers)->Arg(12)->Arg(16)->Arg(20);

void BM_PoAlgorithms(benchmark::State& state) {
  std::mt19937_64 rng(31);
  const auto g = graph::random_regular(256, 4, rng);
  const auto ld = graph::to_ldigraph(g);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::run_po_edges(ld, algorithms::eds_mark_first_po(), 1));
}
BENCHMARK(BM_PoAlgorithms);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
