// E4 -- Figure 6(b): homogeneity of lexicographically ordered toroidal
// grids.  The paper's exact claims: the 6x6 product of directed 6-cycles is
// (4/9, 1)-homogeneous and (1/9, 2)-homogeneous; in general the inner
// fraction follows the (m - 2r)^d / m^d law.

#include <cmath>
#include <numeric>

#include "bench_common.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/order/homogeneity.hpp"

namespace {

using namespace lapx;

order::Keys identity_keys(int n) {
  order::Keys keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

void print_tables() {
  bench::print_header(
      "E4: torus homogeneity, Figure 6(b)",
      "6x6 torus, lex order: (4/9, 1)- and (1/9, 2)-homogeneous; "
      "general law (m-2r)^d / m^d");

  bench::phase("figure6b_6x6");
  {
    const auto d = graph::directed_torus({6, 6});
    const auto keys = identity_keys(36);
    const auto r1 = order::measure_homogeneity(d, keys, 1);
    const auto r2 = order::measure_homogeneity(d, keys, 2);
    bench::print_row({"radius", "paper", "measured"});
    bench::print_row({"1", bench::fmt(4.0 / 9.0), bench::fmt(r1.fraction)});
    bench::print_row({"2", bench::fmt(1.0 / 9.0), bench::fmt(r2.fraction)});
    // Paper-facing table values: deterministic, gated by the CI bench
    // comparison against the committed baseline.
    bench::value("torus6x6_fraction_r1", r1.fraction);
    bench::value("torus6x6_fraction_r2", r2.fraction);
    bench::check(std::abs(r1.fraction - 4.0 / 9.0) < 1e-12,
                 "6x6 torus is (4/9, 1)-homogeneous (Figure 6b)");
    bench::check(std::abs(r2.fraction - 1.0 / 9.0) < 1e-12,
                 "6x6 torus is (1/9, 2)-homogeneous (Figure 6b)");
  }

  bench::phase("general_law");
  std::printf("\nGeneral law, directed d-dimensional tori (r = 1):\n");
  bench::print_row({"dims", "analytic (m-2)^d/m^d", "measured", "types"});
  for (const auto& dims : std::vector<std::vector<int>>{
           {8}, {16}, {64}, {6, 6}, {10, 10}, {16, 16}, {5, 5, 5}}) {
    const auto d = graph::directed_torus(dims);
    const auto report = order::measure_homogeneity(
        d, identity_keys(d.num_vertices()), 1);
    double analytic = 1.0;
    for (int m : dims) analytic *= static_cast<double>(m - 2) / m;
    std::string name;
    for (std::size_t i = 0; i < dims.size(); ++i)
      name += (i ? "x" : "") + std::to_string(dims[i]);
    bench::print_row({name, bench::fmt(analytic), bench::fmt(report.fraction),
                      std::to_string(report.distinct_types)});
  }

  bench::phase("convergence_in_m");
  std::printf(
      "\nConvergence in m (the eps -> 0 limit of Theorem 3.3), 2-dim:\n");
  bench::print_row({"m", "1 - measured fraction (eps)", "analytic eps"});
  for (int m : {6, 10, 16, 24, 40}) {
    const auto d = graph::directed_torus({m, m});
    const auto report = order::measure_homogeneity(
        d, identity_keys(d.num_vertices()), 1);
    const double analytic =
        1.0 - static_cast<double>((m - 2) * (m - 2)) / (m * m);
    bench::print_row({std::to_string(m), bench::fmt(1.0 - report.fraction),
                      bench::fmt(analytic)});
  }
}

void BM_TorusHomogeneity(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto d = graph::directed_torus({m, m});
  const auto keys = identity_keys(d.num_vertices());
  for (auto _ : state)
    benchmark::DoNotOptimize(order::measure_homogeneity(d, keys, 1));
  state.SetComplexityN(m * m);
}
BENCHMARK(BM_TorusHomogeneity)->Arg(8)->Arg(16)->Arg(32)->Complexity();

}  // namespace

LAPX_BENCH_MAIN(print_tables)
