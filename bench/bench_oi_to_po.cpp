// E7 -- Theorem 4.1 / Fact 4.2: the OI -> PO simulation.
//
// For concrete OI algorithms A, the derived PO algorithm B = A(tau* |` W):
//  * agrees with A on >= 1 - eps of the nodes of the homogeneous lift
//    (agreement measured while eps is swept),
//  * produces feasible solutions on the base graph, and
//  * the approximation-ratio inflation (1 - eps |G|)^{-1} vanishes as
//    eps -> 0 -- the chain of inequalities of Section 4.1, measured.

#include <cmath>
#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/oi.hpp"
#include "lapx/core/sampled.hpp"
#include "lapx/core/simulate.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/group/homogeneous.hpp"
#include "lapx/problems/exact.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;

order::Keys identity_keys(int n) {
  order::Keys keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

void print_wreath_sampled();

void print_tables() {
  bench::print_header(
      "E7: the OI -> PO simulation, Theorem 4.1 / Fact 4.2",
      "B agrees with A on >= 1-eps of lift nodes; B is feasible on G; "
      "ratio(B on G) <= (1 - eps|G|)^{-1} ratio(A)");

  // --- agreement sweep on lifted cycles (vertex problem: local-min IS) ---
  std::printf("A = local-min independent set, base = C7, r = 2:\n");
  bench::print_row({"template m", "agreement A vs B on lift", "1 - 4r/m"});
  const auto ord2 = core::TStarOrder::abelian(1, 2);
  for (int m : {16, 32, 64, 128, 256}) {
    const auto lift = core::ordered_product_lift(
        graph::directed_cycle(m), identity_keys(m), graph::directed_cycle(7));
    const auto report = core::measure_agreement(
        lift.graph, lift.keys, algorithms::local_min_is_oi(), ord2, 2);
    bench::print_row({std::to_string(m), bench::fmt(report.agreement),
                      bench::fmt(1.0 - 8.0 / m)});
  }

  // --- edge problem agreement (EDS greedy + fallback) ---
  std::printf("\nA = EDS greedy+fallback (1 round), base = C9, r = 2:\n");
  bench::print_row({"template m", "edge agreement", "B feasible on base",
                    "ratio(B on base)"});
  for (int m : {24, 48, 96}) {
    const auto g = graph::directed_cycle(9);
    const auto lift = core::ordered_product_lift(graph::directed_cycle(m),
                                                 identity_keys(m), g);
    const auto a = algorithms::eds_greedy_fallback_oi(1);
    const auto report =
        core::measure_edge_agreement(lift.graph, lift.keys, a, ord2, 2);
    const auto b = core::oi_to_po_edges(a, ord2);
    const auto base_bits = core::run_po_edges(g, b, 2);
    const auto underlying = g.underlying_graph();
    const auto sol = problems::edge_solution(base_bits);
    const bool feasible =
        problems::edge_dominating_set().feasible(underlying, sol);
    const double ratio =
        static_cast<double>(sol.size()) /
        static_cast<double>(problems::cycle_min_edge_dominating_set(9));
    bench::print_row({std::to_string(m), bench::fmt(report.agreement),
                      feasible ? "yes" : "NO", bench::fmt(ratio)});
  }

  // --- the measured chain of inequalities (Section 4.1) ---
  std::printf(
      "\nChain |A(lift)| >= (1-eps|G|)|B(lift)| and |B(lift)| = l |B(G)|:\n");
  bench::print_row({"m", "|A(lift)|", "|B(lift)|", "l*|B(G)|", "chain holds"});
  for (int m : {30, 90, 270}) {
    const auto g = graph::directed_cycle(9);
    const auto lift = core::ordered_product_lift(graph::directed_cycle(m),
                                                 identity_keys(m), g);
    const auto a = algorithms::eds_greedy_fallback_oi(1);
    const auto b = core::oi_to_po_edges(a, ord2);
    const auto underlying = lift.graph.underlying_graph();
    const std::size_t a_count =
        problems::edge_solution(core::run_oi_edges(underlying, lift.keys, a, 2))
            .size();
    const std::size_t b_lift = problems::edge_solution(
                                   core::run_po_edges(lift.graph, b, 2))
                                   .size();
    const std::size_t b_base =
        problems::edge_solution(core::run_po_edges(g, b, 2)).size();
    const bool chain = (b_lift == static_cast<std::size_t>(m) * b_base) &&
                       (a_count + 8 * 9 >= b_lift);
    bench::print_row({std::to_string(m), std::to_string(a_count),
                      std::to_string(b_lift), std::to_string(m * b_base),
                      chain ? "yes" : "NO"});
  }

  // --- 2-labelled bases through the toroidal template ---
  std::printf("\nA = local-min IS on 2-labelled base torus(3,4), r = 1:\n");
  bench::print_row({"template", "agreement", "B on base: IS size"});
  const auto ord1 = core::TStarOrder::abelian(2, 1);
  for (int m : {12, 24, 48}) {
    const auto g = graph::directed_torus({3, 4});
    const auto lift = core::ordered_product_lift(
        graph::directed_torus({m, m}), identity_keys(m * m), g);
    const auto report = core::measure_agreement(
        lift.graph, lift.keys, algorithms::local_min_is_oi(), ord1, 1);
    const auto b = core::oi_to_po(algorithms::local_min_is_oi(), ord1);
    const auto base_out = core::run_po(g, b, 1);
    std::size_t is_size = 0;
    for (bool bit : base_out) is_size += bit;
    bench::print_row({std::to_string(m) + "x" + std::to_string(m),
                      bench::fmt(report.agreement), std::to_string(is_size)});
  }
  std::printf(
      "  -> B's independent set on the symmetric base is empty: exactly the\n"
      "     MaxIS inapproximability mechanism (Section 1.4).\n");
  print_wreath_sampled();
}

void print_wreath_sampled() {
  // The genuine Section 5 construction at non-materialisable sizes:
  // sampled Fact 4.2 agreement with |H| = m^7 up to ~10^12.
  std::printf(
      "\nA = local-min IS through the *wreath* template (k=1, r=2), base C7;\n"
      "agreement sampled at 400 virtual lift nodes per row:\n");
  std::mt19937_64 rng(77);
  auto spec = lapx::group::design_homogeneous(1, 2, 4, rng);
  if (!spec) {
    std::printf("  generator search failed\n");
    return;
  }
  bench::print_row({"m", "|H| (virtual)", "sampled agreement",
                    "analytic bound"});
  const auto g = graph::directed_cycle(7);
  for (int m : {8, 16, 32, 64}) {
    spec->m = m;
    const auto ord = core::TStarOrder::wreath(*spec);
    const double agreement = core::sampled_agreement(
        *spec, g, algorithms::local_min_is_oi(), ord, spec->r, 400, rng);
    char size[32];
    std::snprintf(size, sizeof size, "%.2e", std::pow(m, 7.0));
    bench::print_row({std::to_string(m), size, bench::fmt(agreement),
                      bench::fmt(lapx::group::inner_fraction_bound(*spec))});
  }
}

void BM_OiToPoSimulation(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto lift = core::ordered_product_lift(
      graph::directed_cycle(m), identity_keys(m), graph::directed_cycle(7));
  const auto ord = core::TStarOrder::abelian(1, 2);
  const auto b = core::oi_to_po(algorithms::local_min_is_oi(), ord);
  for (auto _ : state) benchmark::DoNotOptimize(core::run_po(lift.graph, b, 2));
}
BENCHMARK(BM_OiToPoSimulation)->Arg(16)->Arg(64)->Arg(256);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
