// E15: the lapxd service layer under load.
// E16: warm restart -- the same mix replayed from the persisted cache.
// E19: sharded deployment -- consistent-hash router over N shard workers,
//      byte-identical transcripts at any shard count, SIGKILL-one-shard
//      warm restart.
//
// Drives the in-process Service core (exactly what `lapx_cli serve`
// wraps in a socket) with a mixed query workload over a family of stored
// graphs and measures:
//   * cold-path throughput (empty result cache: every query computes),
//   * warm-path throughput (same request stream replayed: every query is
//     a cache lookup) and the measured hit rate,
//   * the determinism invariant: concatenated response bytes identical
//     across LAPX_THREADS=1 vs =8 and across cold vs warm cache,
//   * the executor sweep: 1/2/4/8 scheduler executors fed through the
//     pipelined submit + response-ordering path (LAPX_THREADS pinned to 1
//     so the axes do not confound), byte-identical transcripts at every
//     width and a cold-throughput scaling check on multi-core hosts,
//   * backpressure: a queue-capacity-1 service under a burst answers
//     `busy` instead of queueing unboundedly.
//
// The warm/cold ratio is the service's reason to exist: repeated
// homogeneity/simulation queries against resident graphs must be
// O(lookup), not O(recompute) -- acceptance asks for >= 10x.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "lapx/runtime/parallel.hpp"
#include "lapx/service/client.hpp"
#include "lapx/service/ordering.hpp"
#include "lapx/service/service.hpp"
#include "lapx/service/shard/hash_ring.hpp"
#include "lapx/service/shard/router.hpp"
#include "lapx/service/shard/worker.hpp"

namespace {

using lapx::bench::check;
using lapx::bench::fmt;
using lapx::bench::print_header;
using lapx::bench::print_row;
using lapx::bench::value;
using lapx::service::ResponseSequencer;
using lapx::service::Service;

// One setup request per stored graph.  Two tiers: small graphs (n <= 16)
// carry the exact-optimum ops; larger graphs (n > 64, so `run` skips its
// exact-OPT ratio branch) make the cold neighbourhood/LP work real.
const std::vector<std::string>& setup_requests() {
  static const std::vector<std::string> reqs = {
      R"({"op":"generate","name":"pet","family":"petersen"})",
      R"({"op":"generate","name":"g44","family":"grid","args":[4,4]})",
      R"({"op":"generate","name":"c12","family":"cycle","args":[12]})",
      R"({"op":"generate","name":"c200","family":"cycle","args":[200]})",
      R"({"op":"generate","name":"t99","family":"torus","args":[9,9]})",
      R"({"op":"generate","name":"q7","family":"hypercube","args":[7]})",
      R"({"op":"generate","name":"r4","family":"regular","args":[128,4,7]})",
  };
  return reqs;
}

// The query mix: every query op, several radii/problems/algorithms; the
// exponential exact solvers only run against the small tier.
std::vector<std::string> query_mix() {
  const std::vector<std::string> small = {"pet", "g44", "c12"};
  const std::vector<std::string> large = {"c200", "t99", "q7", "r4"};
  std::vector<std::string> reqs;
  int id = 100;
  for (int rep = 0; rep < 8; ++rep) {
    for (const std::string& g : small) {
      auto add = [&](const std::string& rest) {
        reqs.push_back("{\"id\":" + std::to_string(id++) + ",\"graph\":\"" +
                       g + "\"," + rest + "}");
      };
      for (const char* prob : {"vc", "mm", "ds", "eds"})
        add("\"op\":\"optimum\",\"problem\":\"" + std::string(prob) + "\"");
      for (const char* alg : {"local-min-is", "vc-non-min", "even-min-is"})
        add("\"op\":\"run\",\"algorithm\":\"" + std::string(alg) + "\"");
    }
    for (const std::string& g : large) {
      auto add = [&](const std::string& rest) {
        reqs.push_back("{\"id\":" + std::to_string(id++) + ",\"graph\":\"" +
                       g + "\"," + rest + "}");
      };
      add(R"("op":"analyze")");
      for (int r = 1; r <= 2; ++r) {
        add("\"op\":\"homogeneity\",\"radius\":" + std::to_string(r));
        add("\"op\":\"views\",\"radius\":" + std::to_string(r));
      }
      for (const char* alg :
           {"eds-mark-first", "edge-cover", "local-min-is", "vc-non-min",
            "eds-greedy", "even-min-is"})
        add("\"op\":\"run\",\"algorithm\":\"" + std::string(alg) + "\"");
      add(R"("op":"fractional")");
    }
  }
  return reqs;
}

struct PassResult {
  std::string bytes;        // concatenated response lines
  double seconds = 0.0;
  double requests_per_second = 0.0;
};

PassResult run_pass(Service& svc, const std::vector<std::string>& reqs) {
  PassResult out;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& r : reqs) {
    out.bytes += svc.handle(r);
    out.bytes += '\n';
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.requests_per_second =
      out.seconds > 0 ? static_cast<double>(reqs.size()) / out.seconds : 0.0;
  return out;
}

struct ThreadsResult {
  PassResult cold, warm;
  double hit_rate = 0.0;
};

ThreadsResult run_at(int threads, const std::vector<std::string>& reqs) {
  lapx::runtime::set_thread_count(threads);
  Service svc;
  for (const std::string& r : setup_requests()) svc.handle(r);
  ThreadsResult out;
  svc.clear_cache();
  out.cold = run_pass(svc, reqs);
  const auto before = svc.cache().stats();
  out.warm = run_pass(svc, reqs);
  const auto after = svc.cache().stats();
  const auto lookups = (after.hits - before.hits) +
                       (after.misses - before.misses);
  out.hit_rate = lookups == 0 ? 0.0
                              : static_cast<double>(after.hits - before.hits) /
                                    static_cast<double>(lookups);
  lapx::runtime::set_thread_count(0);
  return out;
}

// Pipelined pass: up to kWindow requests in flight against the scheduler;
// the sequencer merges out-of-order completions back into submission order.
// The window stays below the scheduler queue capacity so nothing rejects.
PassResult run_pipelined_pass(Service& svc,
                              const std::vector<std::string>& reqs) {
  constexpr std::size_t kWindow = 32;
  PassResult out;
  ResponseSequencer sequencer;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& r : reqs) {
    sequencer.enqueue(svc.submit(r));
    if (sequencer.in_flight() >= kWindow) sequencer.drain_one(out.bytes);
    sequencer.drain_ready(out.bytes);
  }
  sequencer.drain_all(out.bytes);
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.requests_per_second =
      out.seconds > 0 ? static_cast<double>(reqs.size()) / out.seconds : 0.0;
  return out;
}

ThreadsResult run_executors(int executors,
                            const std::vector<std::string>& reqs) {
  // Pin the runtime pool to one thread so the sweep isolates the executor
  // axis: any scaling seen here is the scheduler's, not the pool's.
  lapx::runtime::set_thread_count(1);
  Service::Options opt;
  opt.scheduler.executors = executors;
  Service svc(opt);
  for (const std::string& r : setup_requests()) svc.handle(r);
  ThreadsResult out;
  svc.clear_cache();
  out.cold = run_pipelined_pass(svc, reqs);
  const auto before = svc.cache().stats();
  out.warm = run_pipelined_pass(svc, reqs);
  const auto after = svc.cache().stats();
  const auto lookups =
      (after.hits - before.hits) + (after.misses - before.misses);
  out.hit_rate = lookups == 0 ? 0.0
                              : static_cast<double>(after.hits - before.hits) /
                                    static_cast<double>(lookups);
  lapx::runtime::set_thread_count(0);
  return out;
}

void print_persistence_table(const std::vector<std::string>& reqs);
void print_shard_table();

void print_tables() {
  print_header("E15  lapxd service: cache + scheduler under load",
               "warm-cache repeated queries are O(lookup): >= 10x the cold "
               "path, byte-identical responses at any thread count");
  const std::vector<std::string> reqs = query_mix();
  std::printf("request mix: %zu requests over 7 resident graphs "
              "(all query ops)\n\n",
              reqs.size());
  print_row({"threads", "cold req/s", "warm req/s", "speedup", "hit rate"});
  const ThreadsResult t1 = run_at(1, reqs);
  const ThreadsResult t8 = run_at(8, reqs);
  for (const auto& [threads, res] :
       {std::pair<int, const ThreadsResult&>{1, t1}, {8, t8}}) {
    print_row({std::to_string(threads), fmt(res.cold.requests_per_second, 0),
               fmt(res.warm.requests_per_second, 0),
               fmt(res.warm.requests_per_second /
                       res.cold.requests_per_second, 1) + "x",
               fmt(res.hit_rate, 4)});
  }
  std::printf("\n");
  check(t1.warm.requests_per_second >= 10.0 * t1.cold.requests_per_second,
        "warm >= 10x cold (1 thread)");
  check(t8.warm.requests_per_second >= 10.0 * t8.cold.requests_per_second,
        "warm >= 10x cold (8 threads)");
  check(t1.hit_rate > 0.999, "warm pass hit rate ~ 1");
  check(t1.cold.bytes == t1.warm.bytes,
        "responses byte-identical cold vs warm (1 thread)");
  check(t8.cold.bytes == t8.warm.bytes,
        "responses byte-identical cold vs warm (8 threads)");
  check(t1.cold.bytes == t8.cold.bytes,
        "responses byte-identical LAPX_THREADS=1 vs =8");
  value("requests_in_mix", static_cast<double>(reqs.size()));
  value("warm_hit_rate_threads1", t1.hit_rate);
  value("warm_hit_rate_threads8", t8.hit_rate);

  // Executor sweep: the same mix pipelined onto 1/2/4/8 scheduler
  // executors (runtime pool pinned to 1 thread).  The merge layer must
  // make the width invisible in the bytes; on a multi-core host the cold
  // path must also show real scaling.
  std::printf("\nexecutor sweep (LAPX_THREADS=1, pipelined, window 32)\n");
  print_row({"executors", "cold req/s", "warm req/s", "hit rate"});
  const std::vector<int> widths = {1, 2, 4, 8};
  std::vector<ThreadsResult> sweep;
  sweep.reserve(widths.size());
  for (const int e : widths) {
    sweep.push_back(run_executors(e, reqs));
    const ThreadsResult& res = sweep.back();
    print_row({std::to_string(e), fmt(res.cold.requests_per_second, 0),
               fmt(res.warm.requests_per_second, 0), fmt(res.hit_rate, 4)});
  }
  std::printf("\n");
  for (std::size_t i = 0; i < widths.size(); ++i) {
    check(sweep[i].cold.bytes == sweep[i].warm.bytes,
          "byte-identical cold vs warm (" + std::to_string(widths[i]) +
              " executors)");
    check(sweep[i].cold.bytes == sweep[0].cold.bytes,
          "byte-identical transcript vs 1 executor (" +
              std::to_string(widths[i]) + " executors)");
    check(sweep[i].hit_rate > 0.999,
          "warm hit rate ~ 1 (" + std::to_string(widths[i]) + " executors)");
  }
  check(t1.cold.bytes == sweep[0].cold.bytes,
        "pipelined transcript matches synchronous transcript");
  // Scaling is hardware-dependent, so the check self-gates: on hosts with
  // fewer than 4 cores it degenerates to the (still meaningful) claim that
  // extra executors at least do no harm.  The check name stays
  // machine-independent so the CI bench gate can compare it across runs.
  const bool enough_cores = std::thread::hardware_concurrency() >= 4;
  const double scaling =
      sweep[2].cold.requests_per_second / sweep[0].cold.requests_per_second;
  std::printf("cold scaling at 4 executors: %sx (%u hardware threads)\n",
              fmt(scaling, 2).c_str(), std::thread::hardware_concurrency());
  check(enough_cores ? scaling >= 2.0 : scaling >= 0.5,
        "cold throughput scales with executors (>= 2x on >= 4 cores)");

  // Backpressure: a queue of capacity 1 with a single executor, hammered
  // without waiting, must reject with `busy` rather than queue unboundedly.
  Service::Options opts;
  opts.scheduler.queue_capacity = 1;
  Service tight(opts);
  tight.handle(R"({"op":"generate","name":"g","family":"torus","args":[6,6]})");
  // Exhaust the queue from this thread: the first query occupies the
  // executor or queue; a conflicting *distinct* query must see `busy` at
  // least occasionally under a synchronous client it cannot, so assert
  // the stats plumbing instead: every submitted job was executed and none
  // rejected (a single synchronous caller never overflows the queue).
  for (int r = 1; r <= 4; ++r)
    tight.handle("{\"op\":\"homogeneity\",\"graph\":\"g\",\"radius\":" +
                 std::to_string(r) + "}");
  const auto ss = tight.scheduler().stats();
  check(ss.executed == ss.submitted && ss.rejected_busy == 0,
        "synchronous client never trips backpressure");
  std::printf("(burst-mode busy responses are exercised in service_test)\n");

  print_persistence_table(reqs);
  print_shard_table();
}

// E16: warm restart from the persisted cache.  A service with a cache dir
// runs the E15 mix cold and shuts down cleanly (snapshot + journal
// truncate); a second service over the same directory re-generates the
// graphs and replays the mix.  Every query must be a cache hit, and the
// transcript must be byte-identical to the cold run -- the on-disk format
// survives the restart's fresh TypeId assignment by re-interning each
// loaded fingerprint.  (An in-process "restart" shares the global
// interner, so the id-shift axis itself is covered by
// service_persist_test's two-interner suite and the CI cross-process
// smoke test; what E16 measures is the replayed transcript and the
// restart hit rate under the full mix.)
void print_persistence_table(const std::vector<std::string>& reqs) {
  print_header("E16  lapxd persistence: warm restart from snapshot + journal",
               "a restarted daemon replays the workload entirely from the "
               "persisted cache: hit rate 1, byte-identical responses");
  char tmpl[] = "/tmp/lapx-bench-e16-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    check(false, "mkdtemp for the persistence dir");
    return;
  }
  Service::Options opt;
  opt.cache_dir = dir;
  PassResult cold;
  std::uint64_t cold_misses = 0;
  {
    Service svc(opt);
    for (const std::string& r : setup_requests()) svc.handle(r);
    cold = run_pass(svc, reqs);
    cold_misses = svc.cache().stats().misses;
  }  // clean shutdown: snapshot written, journal truncated

  PassResult warm;
  double hit_rate = 0.0;
  std::uint64_t loaded = 0;
  std::string load_error;
  {
    Service svc(opt);
    if (svc.persist() != nullptr) {
      loaded = svc.persist()->info().loaded_entries;
      load_error = svc.persist()->info().last_error;
    }
    for (const std::string& r : setup_requests()) svc.handle(r);
    const auto before = svc.cache().stats();
    warm = run_pass(svc, reqs);
    const auto after = svc.cache().stats();
    const auto lookups =
        (after.hits - before.hits) + (after.misses - before.misses);
    hit_rate = lookups == 0 ? 0.0
                            : static_cast<double>(after.hits - before.hits) /
                                  static_cast<double>(lookups);
  }

  print_row({"pass", "req/s", "hit rate"});
  print_row({"cold (fresh dir)", fmt(cold.requests_per_second, 0), "-"});
  print_row({"warm restart", fmt(warm.requests_per_second, 0),
             fmt(hit_rate, 4)});
  std::printf("loaded %llu entries from %s%s%s\n\n",
              static_cast<unsigned long long>(loaded), dir,
              load_error.empty() ? "" : ", load error: ",
              load_error.c_str());
  check(load_error.empty(), "clean store loads without errors");
  check(loaded == cold_misses,
        "every cold miss was persisted (loaded entries = cold misses)");
  check(hit_rate >= 1.0, "warm-restart hit rate = 1 (no recompute)");
  check(cold.bytes == warm.bytes,
        "responses byte-identical across the restart");
  value("persisted_entries", static_cast<double>(loaded));
  value("warm_restart_hit_rate", hit_rate);

  for (const char* f : {"/snapshot.lapxc", "/journal.lapxj"})
    ::unlink((std::string(dir) + f).c_str());
  ::rmdir(dir);
}

// ---------------------------------------------------------------------
// E19: sharded deployment.

namespace shard = lapx::service::shard;
using lapx::service::Client;

// The E19 socket mix: session setup, a query spread that touches every
// shard, an admin mutation with re-queries, and the fan-out ops.  `stats`
// and `cache_info` are the two ops exempt from the determinism contract,
// so they stay out.
std::vector<std::string> e19_requests() {
  std::vector<std::string> reqs = setup_requests();
  int id = 5000;
  auto add = [&](const std::string& g, const std::string& rest) {
    reqs.push_back("{\"id\":" + std::to_string(id++) + ",\"graph\":\"" + g +
                   "\"," + rest + "}");
  };
  for (int rep = 0; rep < 2; ++rep) {
    for (const char* g : {"pet", "g44", "c12"}) {
      add(g, R"("op":"optimum","problem":"vc")");
      add(g, R"("op":"run","algorithm":"local-min-is")");
    }
    for (const char* g : {"c200", "t99", "q7", "r4"}) {
      add(g, R"("op":"analyze")");
      add(g, R"("op":"homogeneity","radius":1)");
      add(g, R"("op":"homogeneity","radius":2)");
      add(g, R"("op":"views","radius":1)");
      add(g, R"("op":"fractional")");
      add(g, R"("op":"run","algorithm":"eds-mark-first")");
    }
  }
  // A mutation epoch: admin ops run inline in submission order on the
  // owning shard, so the edit -> re-query -> revert -> re-query sequence
  // is deterministic at any shard count.
  reqs.push_back(
      R"({"id":5900,"op":"mutate","name":"c12","edits":[{"op":"add","u":0,"v":6}]})");
  add("c12", R"("op":"analyze")");
  add("c12", R"("op":"homogeneity","radius":1)");
  reqs.push_back(
      R"({"id":5901,"op":"mutate","name":"c12","edits":[{"op":"remove","u":0,"v":6}]})");
  add("c12", R"("op":"analyze")");
  reqs.push_back(R"({"id":5902,"op":"session_info"})");
  reqs.push_back(R"({"id":5903,"op":"list"})");
  return reqs;
}

// The kill-scenario mix must replay byte-identically against a cluster
// where the SURVIVING shard kept its session store: re-generating an
// existing name overwrites it and advances the epoch, so epoch-bearing
// ops (mutate, session_info) are excluded -- generate/query responses
// carry no epochs.
std::vector<std::string> e19_kill_requests() {
  std::vector<std::string> reqs = setup_requests();
  int id = 6000;
  auto add = [&](const std::string& g, const std::string& rest) {
    reqs.push_back("{\"id\":" + std::to_string(id++) + ",\"graph\":\"" + g +
                   "\"," + rest + "}");
  };
  for (const char* g : {"c200", "t99", "q7", "r4"}) {
    add(g, R"("op":"analyze")");
    add(g, R"("op":"homogeneity","radius":1)");
    add(g, R"("op":"fractional")");
  }
  return reqs;
}

struct ShardRun {
  std::string bytes;  // concatenated response lines (shutdown excluded)
  double seconds = 0.0;
  double requests_per_second = 0.0;
};

std::vector<std::unique_ptr<shard::ShardHost>> make_hosts(
    std::size_t shards, int executors, const std::string& sock_base,
    const std::string& cache_base) {
  std::vector<std::unique_ptr<shard::ShardHost>> hosts;
  for (std::size_t i = 0; i < shards; ++i) {
    shard::WorkerConfig cfg;
    cfg.index = static_cast<int>(i);
    cfg.count = static_cast<int>(shards);
    cfg.socket_path = sock_base + ".s" + std::to_string(i);
    cfg.base_cache_dir = cache_base;
    cfg.service.scheduler.executors = executors;
    hosts.push_back(std::make_unique<shard::InProcessShardHost>(cfg));
  }
  return hosts;
}

// One pipelined client pass over the router socket (window 32, matching
// the E15 sweep); responses append to `out.bytes` in submission order.
ShardRun run_client_pass(const std::string& router_sock,
                         const std::vector<std::string>& reqs) {
  ShardRun out;
  Client client =
      Client::connect_unix(router_sock, Client::startup_retry());
  constexpr std::size_t kWindow = 32;
  std::size_t in_flight = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& r : reqs) {
    if (in_flight >= kWindow) {
      out.bytes += client.recv_line();
      out.bytes += '\n';
      --in_flight;
    }
    client.send(r);
    ++in_flight;
  }
  while (in_flight > 0) {
    out.bytes += client.recv_line();
    out.bytes += '\n';
    --in_flight;
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.requests_per_second =
      out.seconds > 0 ? static_cast<double>(reqs.size()) / out.seconds : 0.0;
  return out;
}

ShardRun run_sharded(std::size_t shards, int executors,
                     const std::vector<std::string>& reqs,
                     const std::string& tag) {
  const std::string base = "/tmp/lapx-e19-" + std::to_string(::getpid()) +
                           "-" + tag;
  shard::ShardSupervisor sup(make_hosts(shards, executors, base, ""));
  sup.start_all();
  shard::Router::Options ropt;
  ropt.endpoint.unix_path = base + ".router";
  shard::Router router(sup, ropt);
  std::thread serve([&router] { router.serve_forever(); });
  ShardRun out = run_client_pass(ropt.endpoint.unix_path, reqs);
  {
    Client client = Client::connect_unix(ropt.endpoint.unix_path,
                                         Client::startup_retry());
    client.call(R"({"op":"shutdown"})");
  }
  serve.join();
  sup.stop_all();
  return out;
}

void print_shard_table() {
  print_header("E19  sharded lapxd: router + shard workers",
               "per-connection transcripts byte-identical at shards 1/2/4 "
               "and executors 1/4; a SIGKILLed shard respawns warm");
  lapx::runtime::set_thread_count(1);
  const std::vector<std::string> reqs = e19_requests();
  std::printf("request mix: %zu requests (setup + queries + mutate + "
              "fan-out ops)\n\n",
              reqs.size());
  print_row({"shards", "executors", "req/s", "transcript bytes"});
  const std::vector<std::size_t> shard_counts = {1, 2, 4};
  const std::vector<int> widths = {1, 4};
  std::vector<std::vector<ShardRun>> runs(shard_counts.size());
  for (std::size_t si = 0; si < shard_counts.size(); ++si) {
    for (const int e : widths) {
      const std::string tag =
          "n" + std::to_string(shard_counts[si]) + "x" + std::to_string(e);
      runs[si].push_back(run_sharded(shard_counts[si], e, reqs, tag));
      const ShardRun& r = runs[si].back();
      print_row({std::to_string(shard_counts[si]), std::to_string(e),
                 fmt(r.requests_per_second, 0),
                 std::to_string(r.bytes.size())});
    }
  }
  std::printf("\n");
  for (std::size_t si = 0; si < shard_counts.size(); ++si)
    for (std::size_t ei = 0; ei < widths.size(); ++ei)
      check(runs[si][ei].bytes == runs[0][0].bytes,
            "byte-identical transcript (shards " +
                std::to_string(shard_counts[si]) + ", executors " +
                std::to_string(widths[ei]) + ")");
  value("e19_transcript_bytes", static_cast<double>(runs[0][0].bytes.size()));
  // Scaling across shard processes is hardware-dependent; self-gate as
  // the executor sweep does so single-core CI still checks "no collapse".
  const bool enough_cores = std::thread::hardware_concurrency() >= 4;
  const double scaling = runs[2][0].requests_per_second /
                         runs[0][0].requests_per_second;
  std::printf("cold scaling at 4 shards: %sx (%u hardware threads)\n",
              fmt(scaling, 2).c_str(), std::thread::hardware_concurrency());
  check(enough_cores ? scaling >= 1.5 : scaling >= 0.2,
        "cold throughput scales with shards (>= 1.5x on >= 4 cores)");

  // Kill-one-shard: SIGKILL (emulated in-process: serving stops abruptly,
  // the shutdown snapshot is skipped) the shard owning "t99" after a cold
  // pass; the supervisor respawns it, the replacement warm-loads its cache
  // slice, and the replayed transcript is byte-identical with zero misses
  // on the respawned shard.
  char tmpl[] = "/tmp/lapx-e19-kill-XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  if (dir == nullptr) {
    check(false, "mkdtemp for the shard cache dir");
    lapx::runtime::set_thread_count(0);
    return;
  }
  const std::vector<std::string> kill_reqs = e19_kill_requests();
  const std::string base =
      "/tmp/lapx-e19-" + std::to_string(::getpid()) + "-kill";
  {
    shard::ShardSupervisor sup(make_hosts(2, 1, base, dir));
    sup.start_all();
    sup.begin_monitor();
    shard::Router::Options ropt;
    ropt.endpoint.unix_path = base + ".router";
    ropt.cache_dir = dir;
    shard::Router router(sup, ropt);
    std::thread serve([&router] { router.serve_forever(); });

    const ShardRun cold = run_client_pass(ropt.endpoint.unix_path, kill_reqs);
    const std::size_t victim = shard::HashRing(2).owner("t99");
    auto* victim_host =
        static_cast<shard::InProcessShardHost*>(&sup.host(victim));
    victim_host->kill_hard();
    for (int i = 0; i < 500 && !sup.host(victim).alive(); ++i)
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    check(sup.host(victim).alive(), "supervisor respawned the killed shard");
    const ShardRun warm = run_client_pass(ropt.endpoint.unix_path, kill_reqs);
    const auto cs = victim_host->service()->cache().stats();
    std::printf("killed shard %zu: respawns %llu, replay misses %llu\n\n",
                victim, static_cast<unsigned long long>(sup.respawns()),
                static_cast<unsigned long long>(cs.misses));
    check(sup.respawns() == 1, "exactly one respawn");
    check(cold.bytes == warm.bytes,
          "replay byte-identical after SIGKILL + warm respawn");
    check(cs.misses == 0, "respawned shard replays from its cache slice "
                          "(misses = 0)");
    value("e19_killed_shard_replay_misses", static_cast<double>(cs.misses));
    {
      Client client = Client::connect_unix(ropt.endpoint.unix_path,
                                           Client::startup_retry());
      client.call(R"({"op":"shutdown"})");
    }
    serve.join();
    sup.stop_all();
  }
  for (int i = 0; i < 2; ++i) {
    const std::string sd =
        std::string(dir) + "/shard-" + std::to_string(i) + "-of-2";
    for (const char* f : {"/snapshot.lapxc", "/journal.lapxj"})
      ::unlink((sd + f).c_str());
    ::rmdir(sd.c_str());
  }
  ::unlink((std::string(dir) + "/shards.meta").c_str());
  ::rmdir(dir);
  lapx::runtime::set_thread_count(0);
}

void BM_WarmQuery(benchmark::State& state) {
  Service svc;
  for (const std::string& r : setup_requests()) svc.handle(r);
  const std::string req =
      R"({"op":"homogeneity","graph":"t99","radius":2})";
  svc.handle(req);  // prime
  for (auto _ : state) {
    benchmark::DoNotOptimize(svc.handle(req));
  }
}
BENCHMARK(BM_WarmQuery);

void BM_ColdQuery(benchmark::State& state) {
  Service svc;
  for (const std::string& r : setup_requests()) svc.handle(r);
  const std::string req =
      R"({"op":"homogeneity","graph":"t99","radius":2})";
  for (auto _ : state) {
    svc.clear_cache();
    benchmark::DoNotOptimize(svc.handle(req));
  }
}
BENCHMARK(BM_ColdQuery);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
