// E12 -- Section 6.1: the main theorem does NOT extend below PO.
//
// On a d-regular graph whose port numbering comes from a proper
// d-edge-colouring, every PN view (ports, no orientations) is isomorphic to
// every other, so a PN algorithm outputs a constant: the only feasible
// dominating set it can produce is "all nodes".  But *any* orientation
// breaks the symmetry -- a colour class is a perfect matching, and a
// matching edge cannot point both ways -- so PO algorithms can produce the
// Mayer-Naor-Stockmeyer weak 2-colouring and from it a dominating set of
// at most half the nodes.  PN < PO, strictly.

#include <map>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/po.hpp"
#include "lapx/core/pn_view.hpp"
#include "lapx/core/view.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/problems/exact.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;

struct Instance {
  std::string name;
  graph::Graph g;
  graph::PortNumbering pn;
};

std::vector<Instance> instances() {
  std::vector<Instance> result;
  {
    graph::Graph q3 = graph::hypercube(3);
    auto coloring = graph::hypercube_edge_coloring(q3, 3);
    result.push_back(
        {"Q3 (3-cube)", q3, graph::ports_from_edge_coloring(q3, coloring)});
  }
  {
    graph::Graph k33 = graph::complete_bipartite(3, 3);
    auto coloring = graph::k33_edge_coloring(k33);
    result.push_back(
        {"K_{3,3}", k33, graph::ports_from_edge_coloring(k33, coloring)});
  }
  return result;
}

void print_tables() {
  bench::print_header(
      "E12: PN vs PO separation, Section 6.1",
      "edge-colour ports make all PN views isomorphic (PN stuck at the "
      "trivial dominating set); any orientation lets PO halve it");

  std::mt19937_64 rng(12);
  for (const auto& inst : instances()) {
    std::printf("\ninstance %s: n=%d, 3-regular\n", inst.name.c_str(),
                inst.g.num_vertices());

    // PN: all views isomorphic at every radius.
    for (int r : {1, 2, 4}) {
      std::map<std::string, int> types;
      for (graph::Vertex v = 0; v < inst.g.num_vertices(); ++v)
        ++types[core::pn_view_type(core::pn_view(inst.g, inst.pn, v, r))];
      bench::check(types.size() == 1,
                   "PN: all radius-" + std::to_string(r) +
                       " views isomorphic (" + std::to_string(types.size()) +
                       " type)");
    }
    std::printf(
        "  -> a PN algorithm outputs one constant bit; the only feasible\n"
        "     dominating set is all %d nodes (OPT = %zu)\n",
        inst.g.num_vertices(),
        problems::min_dominating_set_size(inst.g));

    // PO: sweep random orientations; symmetry always breaks and the weak
    // colouring yields a half-size dominating set.
    int orientations_tested = 0, symmetric = 0;
    std::size_t worst_ds = 0;
    bool always_feasible = true, always_weak = true;
    for (int trial = 0; trial < 32; ++trial) {
      graph::Orientation orient;
      orient.u_to_v.resize(inst.g.num_edges());
      for (std::size_t e = 0; e < inst.g.num_edges(); ++e)
        orient.u_to_v[e] = rng() & 1;
      const auto ld = graph::to_ldigraph(inst.g, inst.pn, orient, 3);
      std::map<std::string, int> types;
      for (graph::Vertex v = 0; v < inst.g.num_vertices(); ++v)
        ++types[core::view_type(core::view(ld, v, 2))];
      if (types.size() == 1) ++symmetric;
      // Weak colouring: every node has an oppositely coloured neighbour
      // (its mutual port-0 partner).
      const auto colors = core::run_po(ld, algorithms::weak_coloring_po(3), 1);
      for (graph::Vertex v = 0; v < inst.g.num_vertices(); ++v) {
        bool has_opposite = false;
        for (graph::Vertex u : inst.g.neighbors(v))
          if (colors[u] != colors[v]) has_opposite = true;
        always_weak &= has_opposite;
      }
      const auto ds_bits =
          core::run_po(ld, algorithms::ds_from_weak_coloring_po(3), 2);
      const auto sol = problems::vertex_solution(ds_bits);
      always_feasible &=
          problems::dominating_set().feasible(inst.g, sol);
      worst_ds = std::max(worst_ds, sol.size());
      ++orientations_tested;
    }
    bench::check(symmetric == 0,
                 "PO: all " + std::to_string(orientations_tested) +
                     " random orientations break symmetry");
    bench::check(always_weak, "PO: orientation colouring is weakly proper");
    bench::check(always_feasible, "PO: derived dominating set feasible");
    std::printf(
        "  PO dominating set: worst size %zu of %d nodes (PN forced %d)\n",
        worst_ds, inst.g.num_vertices(), inst.g.num_vertices());
  }

  std::printf(
      "\n-> PN < PO strictly: the paper's ID = OI = PO collapse stops at PO\n"
      "   (Section 6.1); orientations are essential.\n");
}

void BM_PnView(benchmark::State& state) {
  const auto g = graph::hypercube(3);
  const auto pn =
      graph::ports_from_edge_coloring(g, graph::hypercube_edge_coloring(g, 3));
  const int r = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(core::pn_view(g, pn, 0, r));
}
BENCHMARK(BM_PnView)->Arg(1)->Arg(3)->Arg(5);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
