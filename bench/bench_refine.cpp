// E17 -- whole-graph view-type refinement.  The engine in core/refine.hpp
// computes every radius-r view type in r synchronous rounds over the
// non-backtracking edge-states -- O(n * k * r) state updates -- instead of
// materializing n per-vertex view trees of up to (2k)(2k-1)^(r-1) nodes.
// The table times both paths on the experiment graph families and verifies
// they induce the identical type partition; the speedup check is
// hardware-gated (the engine parallelizes across LAPX_THREADS, but it wins
// algorithmically even on one core).

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <unordered_map>

#include "bench_common.hpp"
#include "lapx/core/refine.hpp"
#include "lapx/core/view.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/lift.hpp"
#include "lapx/runtime/parallel.hpp"

namespace {

using namespace lapx;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// First-occurrence class index per vertex: two type vectors over different
// interners induce the same partition iff these agree exactly.
std::vector<std::uint32_t> partition_of(const std::vector<core::TypeId>& t) {
  std::vector<std::uint32_t> cls(t.size());
  std::unordered_map<core::TypeId, std::uint32_t> index;
  for (std::size_t v = 0; v < t.size(); ++v)
    cls[v] = index.try_emplace(t[v], static_cast<std::uint32_t>(index.size()))
                 .first->second;
  return cls;
}

struct CaseResult {
  double legacy_s = 0.0;
  double engine_s = 0.0;
  std::size_t distinct = 0;
  bool same_partition = false;
};

CaseResult run_case(const graph::LDigraph& g, int r) {
  CaseResult res;
  core::TypeInterner legacy_interner;
  core::TypeInterner engine_interner;

  bench::phase("legacy_per_vertex");
  std::vector<core::TypeId> legacy(g.num_vertices());
  const auto t0 = std::chrono::steady_clock::now();
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
    legacy[v] = core::view_type_id(core::view(g, v, r), legacy_interner);
  res.legacy_s = seconds_since(t0);

  bench::phase("engine_refinement");
  const auto t1 = std::chrono::steady_clock::now();
  const auto engine = core::bulk_view_type_ids(g, r, engine_interner);
  res.engine_s = seconds_since(t1);

  bench::phase("verify_partition");
  res.same_partition = partition_of(legacy) == partition_of(engine);
  auto sorted = engine;
  std::sort(sorted.begin(), sorted.end());
  res.distinct = static_cast<std::size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  return res;
}

void print_worklist_table();

void print_tables() {
  bench::print_header(
      "E17: whole-graph type refinement vs per-vertex view materialization",
      "refinement computes all radius-r types in O(n*k*r) state updates; "
      "the per-vertex path re-interns n trees of ~(2k)(2k-1)^(r-1) nodes");

  struct Case {
    std::string name;
    graph::LDigraph g;
    int r;
  };
  std::mt19937_64 rng(17);
  std::vector<Case> cases;
  cases.push_back({"torus 24x24, r=5", graph::directed_torus({24, 24}), 5});
  cases.push_back(
      {"torus 10x10x10, r=4", graph::directed_torus({10, 10, 10}), 4});
  cases.push_back({"lift(torus 3x4)x256, r=6",
                   graph::random_lift(graph::directed_torus({3, 4}), 256, rng)
                       .graph,
                   6});
  {
    // Directed path: boundary effects give ~2r+1 type classes.
    graph::LDigraph path(4096, 1);
    for (graph::Vertex v = 0; v + 1 < path.num_vertices(); ++v)
      path.add_arc(v, v + 1, 0);
    cases.push_back({"path 4096, r=8", std::move(path), 8});
  }
  {
    // Irregular two-label graph: path plus an affine-permutation chord
    // layer (proper by bijectivity; 4v = -1 and 4v = -2 have no solutions
    // mod 2048, so no self-loops or parallel (u,v) pairs).  The path
    // boundary spread through the chords yields many type classes.
    graph::LDigraph chords(2048, 2);
    for (graph::Vertex v = 0; v + 1 < chords.num_vertices(); ++v)
      chords.add_arc(v, v + 1, 0);
    for (graph::Vertex v = 0; v < chords.num_vertices(); ++v)
      chords.add_arc(v, (5 * v + 2) % chords.num_vertices(), 1);
    cases.push_back({"path+chords 2048, r=4", std::move(chords), 4});
  }

  bench::print_row({"graph", "n", "r", "distinct", "partition equal"});
  double legacy_total = 0.0;
  double engine_total = 0.0;
  bool all_equal = true;
  for (auto& c : cases) {
    const auto res = run_case(c.g, c.r);
    legacy_total += res.legacy_s;
    engine_total += res.engine_s;
    all_equal = all_equal && res.same_partition;
    bench::print_row({c.name, std::to_string(c.g.num_vertices()),
                      std::to_string(c.r), std::to_string(res.distinct),
                      res.same_partition ? "yes" : "NO"});
    std::string key = "distinct_" + c.name;
    for (char& ch : key)
      if (ch == ' ' || ch == ',' || ch == '(' || ch == ')') ch = '_';
    bench::value(key, static_cast<double>(res.distinct));
  }

  // Timings are informational (machine-dependent): printed here and recorded
  // in the JSON "phases" section, never in "values".
  std::printf("\nlegacy total %.3fs, engine total %.3fs, speedup %.1fx\n",
              legacy_total, engine_total,
              engine_total > 0 ? legacy_total / engine_total : 0.0);

  bench::check(all_equal,
               "engine type partition matches legacy view_type_id on every "
               "family");
  const double speedup =
      engine_total > 0 ? legacy_total / engine_total : 0.0;
  const bool enough_cores = std::thread::hardware_concurrency() >= 4;
  bench::check(enough_cores ? speedup >= 2.0 : speedup >= 1.2,
               "refinement engine >= 2x faster than per-vertex "
               "materialization (hardware-gated)");

  print_worklist_table();
}

// A stabilizing workload: component diameters spread over two orders of
// magnitude.  The many small trees refine to fixpoint within ~5 rounds and
// retire; the long chains stay active until the boundary effect reaches
// them (~round 1500).  The dense schedule pays O(n) every round regardless;
// the worklist schedule pays O(active).  Deterministic by construction.
graph::LDigraph stabilizing_forest() {
  constexpr graph::Vertex kChains = 2, kChainLen = 3000;
  constexpr graph::Vertex kTrees = 1800, kTreeSize = 12;
  graph::LDigraph g(kChains * kChainLen + kTrees * kTreeSize, 2);
  graph::Vertex next = 0;
  for (graph::Vertex c = 0; c < kChains; ++c) {
    for (graph::Vertex v = 0; v + 1 < kChainLen; ++v)
      g.add_arc(next + v, next + v + 1, 0);
    next += kChainLen;
  }
  for (graph::Vertex t = 0; t < kTrees; ++t) {
    // Complete-ish binary tree: child 2p+1 on port 1, child 2p+2 on port 0.
    for (graph::Vertex v = 1; v < kTreeSize; ++v)
      g.add_arc(next + (v - 1) / 2, next + v, v % 2);
    next += kTreeSize;
  }
  return g;
}

void print_worklist_table() {
  bench::print_header(
      "E17b: worklist scheduling (active-vertex retirement) vs dense rounds",
      "once a vertex's neighbourhood stops changing it retires from the "
      "round worklist; on stabilizing workloads later rounds touch only "
      "the still-active region (runtime/worklist.hpp work-stealing)");

  const graph::LDigraph g = stabilizing_forest();
  constexpr int kR = 48;
  const int old_threads = lapx::runtime::thread_count();
  const auto old_sched = core::refine_scheduling();

  // Reference ids: dense schedule, one thread.
  core::set_refine_scheduling(core::RefineSched::kLegacy);
  lapx::runtime::set_thread_count(1);
  core::TypeInterner ref_interner;
  const auto ref_ids = core::bulk_view_type_ids(g, kR, ref_interner);

  bench::print_row(
      {"threads", "legacy s", "worklist s", "speedup", "ids identical"});
  bool all_identical = true;
  double legacy_1t = 0.0, worklist_1t = 0.0;
  double legacy_8t = 0.0, worklist_8t = 0.0;
  for (const int threads : {1, 2, 4, 8, 16}) {
    lapx::runtime::set_thread_count(threads);
    bench::phase("worklist_sweep_legacy");
    core::set_refine_scheduling(core::RefineSched::kLegacy);
    core::TypeInterner li;
    auto t0 = std::chrono::steady_clock::now();
    const auto legacy_ids = core::bulk_view_type_ids(g, kR, li);
    const double legacy_s = seconds_since(t0);
    bench::phase("worklist_sweep_worklist");
    core::set_refine_scheduling(core::RefineSched::kWorklist);
    core::TypeInterner wi;
    t0 = std::chrono::steady_clock::now();
    const auto worklist_ids = core::bulk_view_type_ids(g, kR, wi);
    const double worklist_s = seconds_since(t0);
    // Raw TypeId equality (not just partitions): the retirement fast path
    // must intern in the identical allocation order.
    const bool identical = legacy_ids == ref_ids && worklist_ids == ref_ids;
    all_identical = all_identical && identical;
    if (threads == 1) legacy_1t = legacy_s, worklist_1t = worklist_s;
    if (threads == 8) legacy_8t = legacy_s, worklist_8t = worklist_s;
    bench::print_row(
        {std::to_string(threads), bench::fmt(legacy_s, 3),
         bench::fmt(worklist_s, 3),
         bench::fmt(worklist_s > 0 ? legacy_s / worklist_s : 0.0, 2) + "x",
         identical ? "yes" : "NO"});
  }
  core::set_refine_scheduling(old_sched);
  lapx::runtime::set_thread_count(old_threads);

  auto sorted = ref_ids;
  std::sort(sorted.begin(), sorted.end());
  const auto distinct = static_cast<double>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  bench::value("distinct_stabilizing_forest_r=48", distinct);
  bench::check(all_identical,
               "worklist TypeIds byte-identical to the dense schedule at "
               "every thread count (raw ids, fresh interners)");
  // Wall-time gate: strict only with >= 8 real cores (timings on an
  // oversubscribed or single-core runner measure the scheduler, not the
  // algorithm); elsewhere gate the serial algorithmic win, which the
  // retirement path delivers with no parallelism at all.
  const bool eight_cores = std::thread::hardware_concurrency() >= 8;
  const double gated_speedup = eight_cores
                                   ? (worklist_8t > 0 ? legacy_8t / worklist_8t
                                                      : 0.0)
                                   : (worklist_1t > 0 ? legacy_1t / worklist_1t
                                                      : 0.0);
  bench::check(eight_cores ? gated_speedup >= 1.9 : gated_speedup >= 1.2,
               "worklist >= 1.9x faster than dense rounds on the "
               "stabilizing workload at 8 threads (hardware-gated)");
}

void BM_LegacyViewTypes(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto g = graph::directed_torus({m, m});
  for (auto _ : state) {
    core::TypeInterner interner;
    std::vector<core::TypeId> t(g.num_vertices());
    for (graph::Vertex v = 0; v < g.num_vertices(); ++v)
      t[v] = core::view_type_id(core::view(g, v, 4), interner);
    benchmark::DoNotOptimize(t);
  }
  state.SetComplexityN(m * m);
}
BENCHMARK(BM_LegacyViewTypes)->Arg(8)->Arg(16)->Arg(32)->Complexity();

void BM_BulkViewTypes(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto g = graph::directed_torus({m, m});
  for (auto _ : state) {
    core::TypeInterner interner;
    benchmark::DoNotOptimize(core::bulk_view_type_ids(g, 4, interner));
  }
  state.SetComplexityN(m * m);
}
BENCHMARK(BM_BulkViewTypes)->Arg(8)->Arg(16)->Arg(32)->Complexity();

}  // namespace

LAPX_BENCH_MAIN(print_tables)
