// E6 -- Theorem 3.3 / Figure 7: homogeneous lifts.  For a homogeneous
// template (H, <) and any L-digraph G, the product G_eps = H x G is a lift
// of G (covering map verified), has girth > 2r + 1, and a >= 1 - eps
// fraction of its nodes have ordered r-neighbourhoods isomorphic to
// subtrees of tau*.

#include <cmath>
#include <numeric>
#include <random>
#include <set>
#include <unordered_map>

#include "bench_common.hpp"
#include "lapx/core/refine.hpp"
#include "lapx/core/simulate.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/lift.hpp"
#include "lapx/graph/properties.hpp"
#include "lapx/group/homogeneous.hpp"
#include "lapx/order/homogeneity.hpp"

namespace {

using namespace lapx;

order::Keys identity_keys(int n) {
  order::Keys keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

// Fraction of lift nodes whose ordered ball embeds into tau*: measured as
// "ordered ball type equals the type of the corresponding tau* subtree",
// which we approximate by tree-ness + agreement of the OI ball with the
// view-derived ball (exact for our purposes: equality of canonical types).
double tree_typed_fraction(const graph::LDigraph& lifted,
                           const order::Keys& keys,
                           const core::TStarOrder& ord, int r) {
  const auto underlying = lifted.underlying_graph();
  // One refinement sweep types every vertex at once.  The simulated tau*
  // ball is a function of the view type alone (view_to_ordered_ball reads
  // only the tree structure and labels), and the direct canonical ball is a
  // function of the interned ordered-ball type alone, so each OI type is
  // materialized once per class instead of once per vertex; equal TypeId
  // <=> equal oi_ball_type string, so the per-vertex verdicts are
  // unchanged.
  const auto view_types = core::bulk_view_type_ids(lifted, r);
  std::unordered_map<core::TypeId, core::TypeId> simulated_by_view;
  std::unordered_map<core::TypeId, core::TypeId> direct_by_ball;
  std::size_t good = 0;
  for (graph::Vertex v = 0; v < lifted.num_vertices(); ++v) {
    auto [sim, sim_new] = simulated_by_view.try_emplace(view_types[v]);
    if (sim_new)
      sim->second = core::oi_ball_type_id(core::canonicalize_oi(
          core::view_to_ordered_ball(core::view(lifted, v, r), ord)));
    const auto ball_type = order::ordered_ball_type_id(underlying, keys, v, r);
    auto [dir, dir_new] = direct_by_ball.try_emplace(ball_type);
    if (dir_new)
      dir->second = core::oi_ball_type_id(
          core::canonicalize_oi(core::extract_ball(underlying, keys, v, r)));
    if (dir->second == sim->second) ++good;
  }
  return static_cast<double>(good) / lifted.num_vertices();
}

void print_tables() {
  bench::print_header(
      "E6: homogeneous lifts, Theorem 3.3 / Figure 7",
      "G_eps is a lift of G; girth > 2r+1; >= 1-eps of nodes have ordered "
      "neighbourhoods isomorphic to subtrees of tau*");

  // --- k = 1 (cycles) at several radii ---
  bench::phase("k1_cycle_templates");
  std::printf("k = 1 templates (directed cycles), base G = directed C7:\n");
  bench::print_row({"m", "r", "covering", "girth", "tau*-subtree frac",
                    "1 - 2r*|G|/|lift| style bound"});
  for (int r : {1, 2, 3}) {
    for (int m : {24, 60, 120}) {
      const auto h = graph::directed_cycle(m);
      const auto g = graph::directed_cycle(7);
      const auto lift = core::ordered_product_lift(h, identity_keys(m), g);
      std::string why;
      const bool covering =
          graph::is_covering_map(lift.graph, g, lift.phi, &why);
      const auto ord = core::TStarOrder::abelian(1, r);
      const double frac = tree_typed_fraction(lift.graph, lift.keys, ord, r);
      bench::print_row({std::to_string(m), std::to_string(r),
                        covering ? "yes" : "NO",
                        std::to_string(graph::girth(lift.graph)),
                        bench::fmt(frac),
                        bench::fmt(1.0 - 2.0 * r / m)});
    }
  }

  // --- k = 2, r = 1: toroidal template (degenerate abelian case) ---
  bench::phase("k2_torus_templates");
  std::printf("\nk = 2 template (lex-ordered torus), base G = torus(3,4):\n");
  bench::print_row({"m", "covering", "girth", "tau*-subtree frac", "bound"});
  for (int m : {8, 16, 32}) {
    const auto h = graph::directed_torus({m, m});
    const auto g = graph::directed_torus({3, 4});
    const auto lift = core::ordered_product_lift(h, identity_keys(m * m), g);
    std::string why;
    const bool covering = graph::is_covering_map(lift.graph, g, lift.phi, &why);
    const auto ord = core::TStarOrder::abelian(2, 1);
    const double frac = tree_typed_fraction(lift.graph, lift.keys, ord, 1);
    const double bound = std::pow(1.0 - 2.0 / m, 2);
    bench::print_row({std::to_string(m), covering ? "yes" : "NO",
                      std::to_string(graph::girth(lift.graph)),
                      bench::fmt(frac), bench::fmt(bound)});
  }

  // --- the paper's wreath template: k = 1, r = 2 ---
  bench::phase("wreath_templates");
  std::printf("\nWreath template (Section 5), k = 1, r = 2, base = C5:\n");
  std::mt19937_64 rng(6);
  auto spec = group::design_homogeneous(1, 2, 4, rng);
  if (spec) {
    bench::print_row({"m", "|H comp|", "covering", "girth", "frac"});
    for (int m : {4, 6}) {
      spec->m = m;
      const auto h = group::materialize_homogeneous(*spec, 1 << 21, true);
      const auto g = graph::directed_cycle(5);
      const auto lift = core::ordered_product_lift(h.digraph, h.keys, g);
      std::string why;
      const bool covering =
          graph::is_covering_map(lift.graph, g, lift.phi, &why);
      const auto ord = core::TStarOrder::wreath(*spec);
      const double frac = tree_typed_fraction(lift.graph, lift.keys, ord, 2);
      bench::print_row({std::to_string(m),
                        std::to_string(h.digraph.num_vertices()),
                        covering ? "yes" : "NO",
                        std::to_string(graph::girth(lift.graph)),
                        bench::fmt(frac)});
    }
  }
}

void BM_ProductLift(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const auto h = graph::directed_torus({m, m});
  const auto keys = identity_keys(m * m);
  const auto g = graph::directed_torus({3, 4});
  for (auto _ : state)
    benchmark::DoNotOptimize(core::ordered_product_lift(h, keys, g));
}
BENCHMARK(BM_ProductLift)->Arg(8)->Arg(16)->Arg(32);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
