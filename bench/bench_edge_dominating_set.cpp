// E9 -- Theorem 1.6 / Section 1.7: the local approximability of minimum
// edge dominating set is exactly 4 - 2/Delta'.
//
//  Upper bound: the PO rule "mark your first incident edge" achieves
//  <= 4 - 2/Delta' on Delta'-regular graphs (measured against exact optima
//  on small instances).
//
//  Lower bound, Delta' = 2 (tight): on the symmetric cycle every radius-r
//  PO algorithm is determined by one mark vector; exhaustive enumeration
//  shows the best feasible behaviour has ratio exactly 3 = 4 - 2/2.
//  The main theorem transfers this to ID: we push a *good* OI algorithm
//  (greedy matching by order + fallback, ratio ~1.6 under random orders)
//  through the OI -> PO simulation and watch it land at ratio 3.
//
//  Lower bound, Delta' = 4: the same exhaustive-behaviour argument on our
//  high-girth 4-regular homogeneous Cayley graph gives a measured lower
//  bound (against a maximal-matching upper bound on OPT, which is sound);
//  the paper's tight 3.5 needs Suomela's [2010] specific worst-case family,
//  which is out of scope here -- see EXPERIMENTS.md.

#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/oi.hpp"
#include "lapx/algorithms/po.hpp"
#include "lapx/core/simulate.hpp"
#include "lapx/core/synthesis.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/graph/properties.hpp"
#include "lapx/group/homogeneous.hpp"
#include "lapx/problems/exact.hpp"
#include "lapx/problems/matching.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;

order::Keys identity_keys(int n) {
  order::Keys keys(n);
  std::iota(keys.begin(), keys.end(), 0);
  return keys;
}

void upper_bound_table() {
  std::printf("Upper bound: PO mark-first-edge on Delta'-regular graphs:\n");
  bench::print_row({"Delta'", "n", "|D|", "OPT", "ratio", "4 - 2/Delta'"});
  std::mt19937_64 rng(9);
  for (int dprime : {2, 4, 6, 8}) {
    const int n = dprime == 2 ? 18 : 14;
    const graph::Graph g = dprime == 2 ? graph::cycle(n)
                                       : graph::random_regular(n, dprime, rng);
    const auto ld = graph::to_ldigraph(g);
    const auto bits =
        core::run_po_edges(ld, algorithms::eds_mark_first_po(), 1);
    const auto sol = problems::edge_solution(bits);
    const bool feasible =
        problems::edge_dominating_set().feasible(g, sol);
    const std::size_t opt = problems::min_edge_dominating_set_size(g);
    const double ratio = static_cast<double>(sol.size()) / opt;
    bench::print_row({std::to_string(dprime), std::to_string(n),
                      std::to_string(sol.size()) + (feasible ? "" : "(!)"),
                      std::to_string(opt), bench::fmt(ratio),
                      bench::fmt(4.0 - 2.0 / dprime)});
  }
}

void cycle_lower_bound_table() {
  std::printf(
      "\nLower bound, Delta' = 2 (exhaustive over PO behaviours on the\n"
      "symmetric cycle; paper: no PO algorithm beats 3):\n");
  bench::print_row({"n", "behaviour", "feasible", "|D|", "ratio"});
  const int n = 60;
  const auto g = graph::directed_cycle(n);
  const auto underlying = g.underlying_graph();
  const std::size_t opt = problems::cycle_min_edge_dominating_set(n);
  double best = 1e18;
  for (int mask = 0; mask < 4; ++mask) {
    const bool mark_in = mask & 1, mark_out = mask & 2;
    const core::EdgePoAlgorithm algo =
        [mark_in, mark_out](const core::ViewTree&) {
          core::EdgeMarksPo marks;
          marks.emplace_back(core::Move{false, 0}, mark_in);
          marks.emplace_back(core::Move{true, 0}, mark_out);
          return marks;
        };
    const auto sol =
        problems::edge_solution(core::run_po_edges(g, algo, 1));
    const bool feasible =
        problems::edge_dominating_set().feasible(underlying, sol);
    const double ratio = static_cast<double>(sol.size()) / opt;
    if (feasible) best = std::min(best, ratio);
    const std::string name = std::string(mark_in ? "pred " : "") +
                             (mark_out ? "succ" : (mark_in ? "" : "none"));
    bench::print_row({std::to_string(n), name.empty() ? "none" : name,
                      feasible ? "yes" : "no", std::to_string(sol.size()),
                      feasible ? bench::fmt(ratio) : "-"});
  }
  std::printf("  best feasible PO ratio: %s   (paper: 3 = 4 - 2/2)\n",
              bench::fmt(best).c_str());
}

void id_transfer_table() {
  std::printf(
      "\nID/OI -> PO transfer (Theorem 1.6 mechanism): the order-greedy EDS\n"
      "algorithm is good under random orders but its PO simulation lands at\n"
      "the tight bound on symmetric cycles:\n");
  bench::print_row({"n", "A + random order", "A + homogeneous order",
                    "B = oi_to_po(A)", "paper bound"});
  const int r = 2;
  const auto ord = core::TStarOrder::abelian(1, r);
  const auto a = algorithms::eds_greedy_fallback_oi(1);
  const auto b = core::oi_to_po_edges(a, ord);
  std::mt19937_64 rng(19);
  for (int n : {30, 90, 300}) {
    const auto g = graph::cycle(n);
    const std::size_t opt = problems::cycle_min_edge_dominating_set(n);
    // random order
    order::Keys random_keys = identity_keys(n);
    std::shuffle(random_keys.begin(), random_keys.end(), rng);
    const double random_ratio =
        static_cast<double>(problems::edge_solution(
                                core::run_oi_edges(g, random_keys, a, r))
                                .size()) /
        opt;
    // homogeneous (aligned) order
    const double aligned_ratio =
        static_cast<double>(problems::edge_solution(
                                core::run_oi_edges(g, identity_keys(n), a, r))
                                .size()) /
        opt;
    // PO simulation on the symmetric cycle
    const auto dg = graph::directed_cycle(n);
    const double po_ratio =
        static_cast<double>(
            problems::edge_solution(core::run_po_edges(dg, b, r)).size()) /
        opt;
    bench::print_row({std::to_string(n), bench::fmt(random_ratio),
                      bench::fmt(aligned_ratio), bench::fmt(po_ratio),
                      bench::fmt(3.0)});
  }
}

void delta4_lower_bound_table() {
  std::printf(
      "\nLower bound, Delta' = 4 (exhaustive over radius-1 PO behaviours on\n"
      "a high-girth 4-regular Cayley graph; ratios certified against the\n"
      "maximal-matching upper bound on OPT):\n");
  std::mt19937_64 rng(21);
  auto spec = group::design_homogeneous(2, 1, 4, rng);
  if (!spec) {
    std::printf("  generator search failed\n");
    return;
  }
  spec->m = 4;
  const auto h = group::materialize_homogeneous(*spec, 1 << 17, true);
  const auto& g = h.digraph;
  const auto underlying = g.underlying_graph();
  // Every node's radius-1 view is the complete 4-regular type, so a PO
  // algorithm is one mark vector over {in0, in1, out0, out1}.
  const auto mm = problems::greedy_maximal_matching(underlying);
  const std::size_t opt_upper =
      std::count(mm.begin(), mm.end(), true);
  double best = 1e18;
  int feasible_count = 0;
  for (int mask = 1; mask < 16; ++mask) {
    const core::EdgePoAlgorithm algo = [mask](const core::ViewTree&) {
      core::EdgeMarksPo marks;
      marks.emplace_back(core::Move{false, 0}, mask & 1);
      marks.emplace_back(core::Move{false, 1}, mask & 2);
      marks.emplace_back(core::Move{true, 0}, mask & 4);
      marks.emplace_back(core::Move{true, 1}, mask & 8);
      return marks;
    };
    const auto sol = problems::edge_solution(core::run_po_edges(g, algo, 1));
    if (!problems::edge_dominating_set().feasible(underlying, sol)) continue;
    ++feasible_count;
    best = std::min(best,
                    static_cast<double>(sol.size()) / opt_upper);
  }
  std::printf(
      "  instance: n=%d girth=%d; %d/15 behaviours feasible;\n"
      "  measured PO lower bound on this instance: ratio >= %s\n"
      "  (paper's tight bound 3.5 needs the dedicated worst-case family)\n",
      g.num_vertices(), graph::girth(g), feasible_count,
      bench::fmt(best).c_str());
}

void circulant_worst_case_search() {
  std::printf(
      "\nWorst-case search, Delta' = 4: on a vertex-transitive Cayley graph\n"
      "of Z_n with S = {a, b}, ALL views coincide at every radius, so any\n"
      "PO algorithm outputs one of {E_a, E_b, E} (the empty marking is\n"
      "infeasible) and its ratio is >= n / OPT.  Searching circulants for\n"
      "the largest forced ratio (paper's supremum over instances: 3.5):\n");
  bench::print_row({"instance", "n", "OPT", "forced ratio n/OPT"});
  double best = 0;
  std::string best_name;
  for (int n = 7; n <= 15; ++n) {
    for (int a = 1; a <= n / 2; ++a) {
      for (int b = a + 1; b <= n / 2; ++b) {
        if (2 * a == n || 2 * b == n) continue;  // keep 4-regular
        graph::Graph g;
        try {
          g = graph::circulant(n, {a, b});
        } catch (const std::exception&) {
          continue;
        }
        if (!g.is_regular(4) || !graph::is_connected(g)) continue;
        const std::size_t opt = problems::min_edge_dominating_set_size(g);
        const double ratio = static_cast<double>(n) / opt;
        if (ratio > best) {
          best = ratio;
          best_name = "C" + std::to_string(n) + "(" + std::to_string(a) +
                      "," + std::to_string(b) + ")";
          bench::print_row({best_name, std::to_string(n), std::to_string(opt),
                            bench::fmt(ratio)});
        }
      }
    }
  }
  std::printf(
      "  best forced PO ratio found: %s on %s (paper supremum: 3.5;\n"
      "  approaching it requires the growing worst-case family of\n"
      "  Suomela [2010] -- see EXPERIMENTS.md)\n",
      bench::fmt(best).c_str(), best_name.c_str());
}

void synthesis_table() {
  std::printf(
      "\nSynthesized optimum (exhaustive over ALL radius-2 PO algorithms on\n"
      "symmetric cycles -- the tight constant computed, not asserted):\n");
  std::vector<graph::LDigraph> instances;
  for (int n : {12, 18, 24, 30}) instances.push_back(graph::directed_cycle(n));
  const auto eds = core::synthesize_po_edges(problems::edge_dominating_set(),
                                             instances, 2);
  const auto vc =
      core::synthesize_po_vertex(problems::vertex_cover(), instances, 2);
  const auto ds =
      core::synthesize_po_vertex(problems::dominating_set(), instances, 2);
  bench::print_row({"problem", "optimal PO ratio", "paper (Delta'=2)"});
  bench::print_row({"edge dominating set", bench::fmt(eds.optimal_ratio),
                    "3 = 4 - 2/2"});
  bench::print_row({"vertex cover", bench::fmt(vc.optimal_ratio), "2"});
  bench::print_row({"dominating set", bench::fmt(ds.optimal_ratio),
                    "3 = Delta' + 1"});
}

void print_tables() {
  bench::print_header(
      "E9: edge dominating sets, Theorem 1.6",
      "local EDS approximability = 4 - 2/Delta' in ID, OI and PO alike");
  upper_bound_table();
  cycle_lower_bound_table();
  id_transfer_table();
  delta4_lower_bound_table();
  circulant_worst_case_search();
  synthesis_table();
}

void BM_EdsMarkFirst(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto g = graph::directed_cycle(n);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::run_po_edges(g, algorithms::eds_mark_first_po(), 1));
  state.SetComplexityN(n);
}
BENCHMARK(BM_EdsMarkFirst)->Range(64, 4096)->Complexity();

void BM_ExactEds(benchmark::State& state) {
  std::mt19937_64 rng(23);
  const auto g = graph::random_regular(static_cast<int>(state.range(0)), 3, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(problems::min_edge_dominating_set_size(g));
}
BENCHMARK(BM_ExactEds)->Arg(10)->Arg(14)->Arg(18);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
