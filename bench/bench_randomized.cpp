// E13 -- Section 6.5: randomness beats determinism in anonymous networks.
//
// Deterministically, maximum matching and maximum independent set admit NO
// constant-factor local approximation in any of ID/OI/PO (E10 shows the
// collapse).  With random bits the collapse disappears:
//  * one-round random independent set achieves E|I| = n/(Delta+1) on
//    Delta-regular graphs,
//  * a few rounds of proposal matching capture a constant fraction of the
//    maximum matching,
//  * feeding random keys to any deterministic OI algorithm simulates
//    unique identifiers (w.h.p.), recovering the random-order behaviour on
//    the very instances whose homogeneous order defeated it.

#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/oi.hpp"
#include "lapx/algorithms/randomized.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/problems/exact.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;

void print_tables() {
  bench::print_header(
      "E13: randomised local algorithms, Section 6.5",
      "MaxIS / MaxM: inapproximable deterministically, constant-factor in "
      "expectation with randomness");

  std::mt19937_64 rng(13);
  const int trials = 50;

  std::printf("one-round randomised independent set (E|I| ~ n/(Delta+1)):\n");
  bench::print_row({"instance", "E|I| measured", "n/(Delta+1)", "MaxIS",
                    "det. PO"});
  for (int d : {2, 3, 4}) {
    const int n = 60;
    const graph::Graph g =
        d == 2 ? graph::cycle(n) : graph::random_regular(n, d, rng);
    double total = 0;
    for (int t = 0; t < trials; ++t) {
      const auto bits = algorithms::randomized_independent_set(g, rng);
      std::size_t size = 0;
      for (bool b : bits) size += b;
      total += static_cast<double>(size);
    }
    bench::print_row({std::to_string(d) + "-regular n=60",
                      bench::fmt(total / trials, 2),
                      bench::fmt(static_cast<double>(n) / (d + 1), 2),
                      std::to_string(problems::max_independent_set_size(g)),
                      "0 (empty)"});
  }

  std::printf("\nproposal matching (rounds sweep, 3-regular n=60):\n");
  bench::print_row({"rounds", "E|M| measured", "nu(G)", "E|M|/nu"});
  {
    const graph::Graph g = graph::random_regular(60, 3, rng);
    const double nu = static_cast<double>(problems::max_matching_size(g));
    for (int rounds : {1, 2, 4, 8}) {
      double total = 0;
      for (int t = 0; t < trials; ++t) {
        const auto bits =
            algorithms::randomized_proposal_matching(g, rounds, rng);
        const auto sol = problems::edge_solution(bits);
        if (!problems::maximum_matching().feasible(g, sol)) {
          std::printf("  INFEASIBLE matching produced!\n");
          return;
        }
        total += static_cast<double>(sol.size());
      }
      bench::print_row({std::to_string(rounds), bench::fmt(total / trials, 2),
                        bench::fmt(nu, 0),
                        bench::fmt(total / trials / nu)});
    }
  }

  std::printf(
      "\nrandom keys as identifiers: the EDS algorithm that the homogeneous\n"
      "order forces to ratio ~3 (E9) recovers its random-order ratio:\n");
  bench::print_row({"n", "E[ratio] random bits", "homogeneous order",
                    "PO bound"});
  for (int n : {60, 180}) {
    const graph::Graph g = graph::cycle(n);
    const std::size_t opt = problems::cycle_min_edge_dominating_set(n);
    const auto a = algorithms::eds_greedy_fallback_oi(1);
    double total = 0;
    for (int t = 0; t < 20; ++t) {
      const auto bits = algorithms::with_random_order_edges(g, a, 2, rng);
      total += static_cast<double>(problems::edge_solution(bits).size()) / opt;
    }
    order::Keys aligned(n);
    std::iota(aligned.begin(), aligned.end(), 0);
    const double aligned_ratio =
        static_cast<double>(
            problems::edge_solution(core::run_oi_edges(g, aligned, a, 2))
                .size()) /
        opt;
    bench::print_row({std::to_string(n), bench::fmt(total / 20),
                      bench::fmt(aligned_ratio), bench::fmt(3.0)});
  }
  std::printf(
      "  -> randomness restores what worst-case orders take away; the\n"
      "     paper's lower bounds are inherently deterministic (Open\n"
      "     problem 6.2).\n");
}

void BM_RandomizedIS(benchmark::State& state) {
  std::mt19937_64 rng(17);
  const auto g = graph::random_regular(static_cast<int>(state.range(0)), 4,
                                       rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(algorithms::randomized_independent_set(g, rng));
}
BENCHMARK(BM_RandomizedIS)->Arg(256)->Arg(4096);

void BM_ProposalMatching(benchmark::State& state) {
  std::mt19937_64 rng(19);
  const auto g = graph::random_regular(1024, 4, rng);
  const int rounds = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(
        algorithms::randomized_proposal_matching(g, rounds, rng));
}
BENCHMARK(BM_ProposalMatching)->Arg(1)->Arg(4)->Arg(16);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
