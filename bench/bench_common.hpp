#pragma once
// Shared helpers for the experiment binaries.
//
// Every bench binary prints its reproduction table first (the paper claim
// next to the measured value) and then runs google-benchmark timings for
// the performance axis.  Pass --table-only to skip the timing runs (the
// repo-level driver uses the full mode; CI uses --table-only).  Pass
// --json <path> to additionally write the table's wall-clock time and every
// check() verdict as a JSON record, so successive PRs can track the speedup
// trajectory of each experiment.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

namespace lapx::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-22s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double x, int digits = 4) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

/// Every check() verdict of the current process, in call order (recorded
/// for the --json report).
inline std::vector<std::pair<std::string, bool>>& check_log() {
  static std::vector<std::pair<std::string, bool>> log;
  return log;
}

inline bool check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what.c_str());
  check_log().emplace_back(what, ok);
  return ok;
}

/// Deterministic paper-facing values recorded for the --json report (a
/// "values" section keyed by name).  Record only machine-independent
/// quantities -- counts, ratios, table entries -- never timings: the CI
/// bench-regression gate compares these across runs with a tight
/// tolerance, while table_wall_seconds is explicitly excluded.
inline std::vector<std::pair<std::string, double>>& value_log() {
  static std::vector<std::pair<std::string, double>> log;
  return log;
}

inline void value(const std::string& name, double v) {
  value_log().emplace_back(name, v);
}

/// Per-table phase timings, aggregated by name (seconds).  Recorded in the
/// JSON report's "phases" section so perf PRs can attribute wall-time wins
/// to specific tables; like table_wall_seconds these are informational only
/// and never gate (bench_compare.py excludes timings from pass/fail).
inline std::vector<std::pair<std::string, double>>& phase_log() {
  static std::vector<std::pair<std::string, double>> log;
  return log;
}

namespace detail {
struct PhaseState {
  std::string name;  // empty: no phase open
  std::chrono::steady_clock::time_point start;
};
inline PhaseState& phase_state() {
  static PhaseState state;
  return state;
}
inline void close_phase() {
  PhaseState& st = phase_state();
  if (st.name.empty()) return;
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    st.start)
          .count();
  auto& log = phase_log();
  for (auto& [name, total] : log)
    if (name == st.name) {
      total += secs;
      st.name.clear();
      return;
    }
  log.emplace_back(st.name, secs);
  st.name.clear();
}
}  // namespace detail

/// Opens a named phase (closing the previous one); run_main closes the last
/// phase when the table finishes.  Repeated names accumulate.
inline void phase(const std::string& name) {
  detail::close_phase();
  detail::phase_state() = {name, std::chrono::steady_clock::now()};
}

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  return out;
}

inline void write_json_report(const std::string& path, const std::string& name,
                              double table_wall_seconds) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  bool all_ok = true;
  std::fprintf(f, "{\n  \"name\": \"%s\",\n", json_escape(name).c_str());
  std::fprintf(f, "  \"table_wall_seconds\": %.6f,\n", table_wall_seconds);
  // Informational like table_wall_seconds: the regression gate never reads
  // timings; the trend report does.
  std::fprintf(f, "  \"phases\": {\n");
  const auto& phases = phase_log();
  for (std::size_t i = 0; i < phases.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.6f%s\n", json_escape(phases[i].first).c_str(),
                 phases[i].second, i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"checks\": [\n");
  const auto& log = check_log();
  for (std::size_t i = 0; i < log.size(); ++i) {
    all_ok = all_ok && log[i].second;
    std::fprintf(f, "    {\"what\": \"%s\", \"ok\": %s}%s\n",
                 json_escape(log[i].first).c_str(),
                 log[i].second ? "true" : "false",
                 i + 1 < log.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"values\": {\n");
  const auto& vals = value_log();
  for (std::size_t i = 0; i < vals.size(); ++i) {
    std::fprintf(f, "    \"%s\": %.12g%s\n", json_escape(vals[i].first).c_str(),
                 vals[i].second, i + 1 < vals.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"all_ok\": %s\n}\n", all_ok ? "true" : "false");
  std::fclose(f);
}

/// Standard main body: print the table (timed), write the --json report if
/// requested, then (unless --table-only) run the registered google-benchmark
/// timings.  --table-only and --json <path> are stripped before the
/// remaining flags reach google-benchmark.
inline int run_main(int argc, char** argv, void (*print_tables)()) {
  bool table_only = false;
  std::string json_path;
  std::vector<char*> pass_through{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--table-only") == 0) {
      table_only = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      pass_through.push_back(argv[i]);
    }
  }
  const auto start = std::chrono::steady_clock::now();
  print_tables();
  detail::close_phase();
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (!json_path.empty()) {
    std::string name = argv[0];
    const auto slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    write_json_report(json_path, name, seconds);
  }
  if (table_only) return 0;
  int pass_argc = static_cast<int>(pass_through.size());
  benchmark::Initialize(&pass_argc, pass_through.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace lapx::bench

#define LAPX_BENCH_MAIN(print_tables)                      \
  int main(int argc, char** argv) {                        \
    return lapx::bench::run_main(argc, argv, print_tables); \
  }
