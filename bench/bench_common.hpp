#pragma once
// Shared helpers for the experiment binaries.
//
// Every bench binary prints its reproduction table first (the paper claim
// next to the measured value) and then runs google-benchmark timings for
// the performance axis.  Pass --table-only to skip the timing runs (the
// repo-level driver uses the full mode; CI uses --table-only).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace lapx::bench {

inline void print_header(const std::string& experiment,
                         const std::string& claim) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n");
}

inline void print_row(const std::vector<std::string>& cells) {
  for (const auto& c : cells) std::printf("%-22s", c.c_str());
  std::printf("\n");
}

inline std::string fmt(double x, int digits = 4) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, x);
  return buf;
}

inline bool check(bool ok, const std::string& what) {
  std::printf("  [%s] %s\n", ok ? "OK" : "MISMATCH", what.c_str());
  return ok;
}

/// Standard main body: print the table, then (unless --table-only) run the
/// registered google-benchmark timings.
inline int run_main(int argc, char** argv, void (*print_tables)()) {
  print_tables();
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--table-only") == 0) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace lapx::bench

#define LAPX_BENCH_MAIN(print_tables)                      \
  int main(int argc, char** argv) {                        \
    return lapx::bench::run_main(argc, argv, print_tables); \
  }
