// E1 -- Figure 1 / Section 2: the three models are well formed and ordered
// in power.  PO outputs are invariant under lifts; OI outputs are invariant
// under order-preserving relabellings; ID outputs may depend on the raw
// identifier values.  Also the ablation of DESIGN.md decision (1): canonical
// ordered-ball encodings versus brute-force isomorphism search.

#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/oi.hpp"
#include "lapx/algorithms/po.hpp"
#include "lapx/core/model.hpp"
#include "lapx/core/view.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/lift.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/order/homogeneity.hpp"

namespace {

using namespace lapx;

void print_tables() {
  bench::print_header(
      "E1: the three models (ID / OI / PO), Figure 1 and Section 2",
      "PO outputs are invariant under lifts; OI outputs are invariant under "
      "order-preserving relabelling; ID outputs may depend on id values");

  std::mt19937_64 rng(1);

  // PO lift invariance over three instance families and radii 1..3.
  bench::print_row({"family", "radius", "lift-degree", "PO lift-invariant"});
  for (int r : {1, 2, 3}) {
    const auto base = graph::directed_torus({3, 4});
    const auto lift = graph::random_lift(base, 3, rng);
    const bool invariant = core::po_outputs_lift_invariant(
        lift.graph, base, lift.phi, algorithms::take_all_po(), r);
    // A view-type matcher is a "maximally informed" PO algorithm.
    const auto matcher = algorithms::match_view_type_po(
        core::view_type(core::view(base, 0, r)));
    const bool invariant2 = core::po_outputs_lift_invariant(
        lift.graph, base, lift.phi, matcher, r);
    bench::print_row({"torus(3,4)", std::to_string(r), "3",
                      invariant && invariant2 ? "yes" : "NO"});
  }

  // OI order-invariance: same graph, two key assignments with equal order.
  {
    const auto g = graph::petersen();
    order::Keys a(10), b(10);
    std::iota(a.begin(), a.end(), 0);
    for (int i = 0; i < 10; ++i) b[i] = 100 + 13 * a[i];
    const auto out_a = core::run_oi(g, a, algorithms::local_min_is_oi(), 1);
    const auto out_b = core::run_oi(g, b, algorithms::local_min_is_oi(), 1);
    bench::check(out_a == out_b,
                 "OI algorithm unchanged under order-preserving relabelling");
  }

  // ID can depend on values: residue algorithm differs on the two labellings.
  {
    const auto g = graph::petersen();
    order::Keys a(10), b(10);
    std::iota(a.begin(), a.end(), 0);
    for (int i = 0; i < 10; ++i) b[i] = 2 * a[i];  // all even
    const core::VertexIdAlgorithm parity = [](const core::Ball& ball) {
      return ball.keys[ball.root] % 2 == 0 ? 1 : 0;
    };
    const auto out_a = core::run_id(g, a, parity, 0);
    const auto out_b = core::run_id(g, b, parity, 0);
    bench::check(out_a != out_b,
                 "ID algorithm distinguishes value-different labellings");
  }

  // Ablation: canonical encoding vs brute-force ordered-ball isomorphism.
  {
    const auto g = graph::torus({6, 6});
    order::Keys keys(36);
    std::iota(keys.begin(), keys.end(), 0);
    // brute force: compare ball of v and u by trying the unique
    // order-preserving bijection explicitly.
    auto brute_equal = [&](graph::Vertex v, graph::Vertex u, int r) {
      return order::ordered_ball_type(g, keys, v, r) ==
             order::ordered_ball_type(g, keys, u, r);
    };
    int classes = 0;
    std::vector<int> repr;
    for (graph::Vertex v = 0; v < 36; ++v) {
      bool fresh = true;
      for (int rv : repr)
        if (brute_equal(v, rv, 1)) {
          fresh = false;
          break;
        }
      if (fresh) {
        repr.push_back(v);
        ++classes;
      }
    }
    const auto report = order::measure_homogeneity(g, keys, 1);
    bench::check(classes == static_cast<int>(report.distinct_types),
                 "canonical encoding finds the same type classes as pairwise "
                 "comparison (" +
                     std::to_string(classes) + " classes)");
  }
}

void BM_ViewExtraction(benchmark::State& state) {
  const auto g = graph::directed_torus({16, 16});
  const int r = static_cast<int>(state.range(0));
  graph::Vertex v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::view(g, v, r));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_ViewExtraction)->Arg(1)->Arg(2)->Arg(3);

void BM_BallExtraction(benchmark::State& state) {
  const auto g = graph::torus({16, 16});
  order::Keys keys(g.num_vertices());
  std::iota(keys.begin(), keys.end(), 0);
  const int r = static_cast<int>(state.range(0));
  graph::Vertex v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::canonicalize_oi(core::extract_ball(g, keys, v, r)));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_BallExtraction)->Arg(1)->Arg(2)->Arg(3);

void BM_OrderedBallType(benchmark::State& state) {
  const auto g = graph::torus({16, 16});
  order::Keys keys(g.num_vertices());
  std::iota(keys.begin(), keys.end(), 0);
  graph::Vertex v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(order::ordered_ball_type(g, keys, v, 2));
    v = (v + 1) % g.num_vertices();
  }
}
BENCHMARK(BM_OrderedBallType);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
