// E8 -- Section 4.2: the Ramsey ID -> OI forcing, made constructive.
// For concrete identifier-dependent ID algorithms, an explicit search finds
// a monochromatic identifier set on which the algorithm's behaviour is
// order-invariant; the forced OI algorithm reproduces the ID algorithm
// exactly on graphs labelled from that set.

#include <numeric>
#include <random>
#include <set>

#include "bench_common.hpp"
#include "lapx/algorithms/id.hpp"
#include "lapx/core/ramsey.hpp"
#include "lapx/graph/generators.hpp"

namespace {

using namespace lapx;

std::vector<core::Ball> collect_structures(const graph::Graph& g,
                                           const order::Keys& keys, int r) {
  std::vector<core::Ball> structures;
  std::set<std::string> seen;
  for (graph::Vertex v = 0; v < g.num_vertices(); ++v) {
    core::Ball b = core::canonicalize_oi(core::extract_ball(g, keys, v, r));
    if (seen.insert(core::oi_ball_type(b)).second) structures.push_back(b);
  }
  return structures;
}

void print_tables() {
  bench::print_header(
      "E8: Ramsey forcing ID -> OI, Section 4.2",
      "for every ID algorithm there are identifier sets on which its output "
      "depends only on the order; the forced OI algorithm agrees exactly");

  order::Keys keys(8);
  std::iota(keys.begin(), keys.end(), 0);
  const graph::Graph g = graph::cycle(8);
  const auto structures = collect_structures(g, keys, 1);
  std::printf("test structures (distinct canonical radius-1 balls on C8): %zu\n\n",
              structures.size());

  struct Candidate {
    const char* name;
    core::VertexIdAlgorithm algo;
  };
  const std::vector<Candidate> candidates = {
      {"residue_id(2,0)", algorithms::residue_id(2, 0)},
      {"residue_id(3,1)", algorithms::residue_id(3, 1)},
      {"even_min_is_id", algorithms::even_min_is_id()},
      {"ds_even_preference_id", algorithms::ds_even_preference_id()},
  };

  bench::print_row({"ID algorithm", "universe", "|J| found", "agreement"});
  for (const auto& c : candidates) {
    const auto forcing = core::force_order_invariance(c.algo, structures,
                                                      /*universe=*/60,
                                                      /*target=*/12);
    if (!forcing) {
      bench::print_row({c.name, "60", "none", "-"});
      continue;
    }
    const double agreement =
        core::forcing_agreement(*forcing, c.algo, g, keys, 1);
    bench::print_row({c.name, "60",
                      std::to_string(forcing->mono_set.size()),
                      bench::fmt(agreement)});
  }

  // Universe sweep: larger universes make monochromatic sets easier/larger,
  // mirroring "identifiers up to poly(n)" in the paper.
  std::printf("\nUniverse sweep for residue_id(3,1), target |J| = 12:\n");
  bench::print_row({"universe", "found", "smallest J element", "largest"});
  for (std::int64_t universe : {20, 40, 80, 160}) {
    const auto forcing = core::force_order_invariance(
        algorithms::residue_id(3, 1), structures, universe, 12);
    if (!forcing) {
      bench::print_row({std::to_string(universe), "no", "-", "-"});
    } else {
      bench::print_row({std::to_string(universe), "yes",
                        std::to_string(forcing->mono_set.front()),
                        std::to_string(forcing->mono_set.back())});
    }
  }
}

void BM_MonochromaticSearch(benchmark::State& state) {
  const int target = static_cast<int>(state.range(0));
  const core::SubsetColouring parity = [](const std::vector<std::int64_t>& s) {
    std::int64_t sum = 0;
    for (auto x : s) sum += x;
    return std::to_string(sum % 2);
  };
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::find_monochromatic_subset(2, 60, target, parity));
}
BENCHMARK(BM_MonochromaticSearch)->Arg(4)->Arg(8)->Arg(12);

void BM_RamseyForcing(benchmark::State& state) {
  order::Keys keys(8);
  std::iota(keys.begin(), keys.end(), 0);
  const graph::Graph g = graph::cycle(8);
  const auto structures = collect_structures(g, keys, 1);
  const auto algo = algorithms::residue_id(2, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        core::force_order_invariance(algo, structures, 60, 10));
}
BENCHMARK(BM_RamseyForcing);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
