// E21 -- the sharded TypeInterner's concurrent hit path.  Refinement rounds
// re-derive mostly-unchanged node tuples, so the interner's dominant
// operation is a lookup of an already-interned key from many threads at
// once.  The sharded table resolves those with atomic loads only (no lock,
// no allocation; see DESIGN.md, "Sharded interner & batched id
// assignment"), which is what lets Phase A of the refinement engine's
// two-phase pattern fan out across LAPX_THREADS.  The table measures
// hit-path throughput scaling with raw std::thread workers (not the pool:
// the subject is the interner), and the batched-miss microbench times the
// two-phase pattern itself against a fully serial interning pass while
// asserting both allocate byte-identical ids.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "lapx/core/interner.hpp"

namespace {

using namespace lapx;
using core::TypeId;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

constexpr std::size_t kUniverse = 1u << 15;      // distinct node keys
constexpr std::size_t kLookupsPerThread = 1u << 18;

// Interns the bench universe: kUniverse single-child view nodes with
// synthetic child ids.  Deterministic, so every interner in the table
// allocates the identical id sequence.
std::vector<TypeId> intern_universe(core::TypeInterner& interner) {
  std::vector<TypeId> ids(kUniverse);
  for (std::uint32_t i = 0; i < kUniverse; ++i) {
    const TypeId child = i;
    ids[i] = interner.intern_node(core::type_tag::kViewNode, &child, 1);
  }
  return ids;
}

void print_hit_path_table() {
  bench::print_header(
      "E21: sharded interner hit-path throughput",
      "already-interned node keys resolve with atomic loads only -- no "
      "shard mutex, no allocation -- so lookup throughput should scale "
      "with threads while every thread sees the identical ids");

  core::TypeInterner interner;  // default shards (LAPX_INTERN_SHARDS)
  const std::vector<TypeId> ids = intern_universe(interner);

  // Per-thread probe order: distinct deterministic shuffles, so threads
  // collide on slots and memo lines the way refinement workers do.
  std::vector<std::vector<std::uint32_t>> orders;
  for (int t = 0; t < 8; ++t) {
    std::vector<std::uint32_t> order(kUniverse);
    for (std::uint32_t i = 0; i < kUniverse; ++i) order[i] = i;
    std::mt19937_64 rng(211 + t);
    std::shuffle(order.begin(), order.end(), rng);
    orders.push_back(std::move(order));
  }

  bench::print_row({"threads", "time s", "Mlookups/s", "scaling", "ids ok"});
  double throughput_1t = 0.0, throughput_8t = 0.0;
  bool all_ok = true;
  for (const int threads : {1, 2, 4, 8}) {
    std::atomic<bool> start{false};
    std::atomic<int> ready{0};
    std::atomic<bool> ok{true};
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const std::vector<std::uint32_t>& order = orders[t];
        ready.fetch_add(1);
        while (!start.load(std::memory_order_acquire)) {
        }
        bool mine = true;
        for (std::size_t i = 0; i < kLookupsPerThread; ++i) {
          const std::uint32_t x = order[i & (kUniverse - 1)];
          const TypeId child = x;
          const TypeId got = interner.try_intern_node(
              core::type_tag::kViewNode, &child, 1);
          mine &= got == ids[x];
        }
        if (!mine) ok.store(false);
      });
    }
    while (ready.load() != threads) {
    }
    bench::phase("hit_path_lookups");
    const auto t0 = std::chrono::steady_clock::now();
    start.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    const double s = seconds_since(t0);
    const double throughput =
        s > 0 ? static_cast<double>(threads) * kLookupsPerThread / s : 0.0;
    if (threads == 1) throughput_1t = throughput;
    if (threads == 8) throughput_8t = throughput;
    all_ok = all_ok && ok.load();
    bench::print_row(
        {std::to_string(threads), bench::fmt(s, 3),
         bench::fmt(throughput / 1e6, 1),
         bench::fmt(throughput_1t > 0 ? throughput / throughput_1t : 0.0, 2) +
             "x",
         ok.load() ? "yes" : "NO"});
  }

  bench::value("interner_universe_distinct",
               static_cast<double>(interner.size()));
  bench::check(all_ok,
               "every concurrent hit-path lookup returned the serially "
               "interned id at every thread count");
  // Wall-clock gate: strict only with >= 8 real cores (on fewer cores the
  // extra threads time the OS scheduler, not the table); elsewhere only
  // require that oversubscription does not fall off a cliff.
  const bool eight_cores = std::thread::hardware_concurrency() >= 8;
  const double scaling =
      throughput_1t > 0 ? throughput_8t / throughput_1t : 0.0;
  bench::check(eight_cores ? scaling >= 3.0 : scaling >= 0.2,
               "hit-path lookup throughput scales >= 3x from 1 to 8 "
               "threads (hardware-gated)");
}

void print_batched_miss_table() {
  bench::print_header(
      "E21b: batched novel-type interning (the two-phase pattern)",
      "workers probe a round's keys lock-free (all miss on novel keys), "
      "then one serial pass interns the misses in canonical order -- ids "
      "must come out byte-identical to a fully serial pass, whatever the "
      "shard count");

  constexpr std::size_t kRounds = 64;
  constexpr std::size_t kPerRound = 2048;

  bench::print_row({"shards", "serial s", "two-phase s", "size", "ids equal"});
  bool all_equal = true;
  double size_value = 0.0;
  for (const int shards : {1, 64}) {
    // Reference: one serial interning pass.
    core::TypeInterner serial(shards);
    std::vector<TypeId> serial_ids;
    bench::phase("miss_serial");
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < kRounds; ++r)
      for (std::uint32_t i = 0; i < kPerRound; ++i) {
        const TypeId child = static_cast<TypeId>(r * kPerRound + i);
        serial_ids.push_back(
            serial.intern_node(core::type_tag::kViewNode, &child, 1));
      }
    const double serial_s = seconds_since(t0);

    // Two-phase: per round, 8 workers probe the round's keys (novel keys
    // miss; repeat keys resolve), then the serial phase interns what is
    // still unresolved, in canonical order.
    core::TypeInterner batched(shards);
    std::vector<TypeId> batched_ids;
    std::vector<TypeId> resolved(kPerRound);
    bench::phase("miss_two_phase");
    const auto t1 = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < kRounds; ++r) {
      std::vector<std::thread> workers;
      for (int t = 0; t < 8; ++t) {
        workers.emplace_back([&, t] {
          for (std::size_t i = t; i < kPerRound; i += 8) {
            const TypeId child = static_cast<TypeId>(r * kPerRound + i);
            resolved[i] = batched.try_intern_node(core::type_tag::kViewNode,
                                                  &child, 1);
          }
        });
      }
      for (auto& w : workers) w.join();
      for (std::size_t i = 0; i < kPerRound; ++i) {
        const TypeId child = static_cast<TypeId>(r * kPerRound + i);
        batched_ids.push_back(
            resolved[i] != core::kNoType
                ? resolved[i]
                : batched.intern_node(core::type_tag::kViewNode, &child, 1));
      }
    }
    const double two_phase_s = seconds_since(t1);

    const bool equal =
        batched_ids == serial_ids && batched.size() == serial.size();
    all_equal = all_equal && equal;
    size_value = static_cast<double>(serial.size());
    bench::print_row({std::to_string(shards), bench::fmt(serial_s, 3),
                      bench::fmt(two_phase_s, 3),
                      std::to_string(serial.size()),
                      equal ? "yes" : "NO"});
  }

  bench::value("interner_miss_rounds_distinct", size_value);
  bench::check(all_equal,
               "two-phase batched interning allocates ids byte-identical "
               "to a serial pass at shards 1 and 64");
}

void print_tables() {
  print_hit_path_table();
  print_batched_miss_table();
}

void BM_HitPathLookup(benchmark::State& state) {
  static core::TypeInterner interner;
  static const std::vector<TypeId> ids = intern_universe(interner);
  std::uint32_t x = 0;
  for (auto _ : state) {
    const TypeId child = x;
    benchmark::DoNotOptimize(
        interner.try_intern_node(core::type_tag::kViewNode, &child, 1));
    x = (x + 1) & (kUniverse - 1);
  }
}
BENCHMARK(BM_HitPathLookup);

void BM_InternNovel(benchmark::State& state) {
  core::TypeInterner interner;
  std::uint32_t x = 0;
  for (auto _ : state) {
    const TypeId child = x++;
    benchmark::DoNotOptimize(
        interner.intern_node(core::type_tag::kPnNode, &child, 1));
  }
}
BENCHMARK(BM_InternNovel);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
