// E18: incremental delta-refinement -- single-edit requery vs from-scratch.
//
// The paper's locality argument (a vertex's output depends only on its
// radius-r view) makes graph edits cheap: cutting or healing one arc can
// only change view types within distance r of its endpoints, so a session
// that keeps its per-round RefineState re-refines a small frontier instead
// of the whole graph.  This bench measures that claim on two instances:
//
//   * a 2-dimensional torus (the Figure 6(b) playground), and
//   * a large random lift of the directed 3x4 torus -- the instance family
//     the lower-bound machinery actually runs on, and where from-scratch
//     refinement is expensive enough for the delta path to matter.
//
// For every timed edit the delta-refined TypeIds are compared against a
// from-scratch RefineState over the same interner: identity is exact, not
// statistical.  Acceptance asks for >= 5x on the large lift.
//
// The second table drives the in-process lapxd Service with a pipelined
// stream that interleaves `mutate` (cut/heal) with `views`/`analyze`
// requeries at 1 and 4 scheduler executors: the transcripts must be
// byte-identical -- mutations are admin ops resolved inline at submission
// order, so executor width must stay invisible in the bytes.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "lapx/core/refine.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/graph/lift.hpp"
#include "lapx/graph/port_numbering.hpp"
#include "lapx/runtime/parallel.hpp"
#include "lapx/service/ordering.hpp"
#include "lapx/service/service.hpp"

namespace {

using lapx::bench::check;
using lapx::bench::fmt;
using lapx::bench::phase;
using lapx::bench::print_header;
using lapx::bench::print_row;
using lapx::bench::value;
using lapx::core::RefineState;
using lapx::core::TypeInterner;
using lapx::graph::Arc;
using lapx::graph::LDigraph;
using lapx::service::ResponseSequencer;
using lapx::service::Service;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median_of(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  const std::size_t n = xs.size();
  return n % 2 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

struct EditTrialResult {
  double delta_seconds = 0.0;  // median per timed edit
  double full_seconds = 0.0;   // median over the paired from-scratch runs
  bool ids_identical = true;   // delta vs scratch, every edit
  std::size_t last_dirty = 0;
  std::size_t last_frontier = 0;
  int edits = 0;
};

// Alternating cut/heal single-arc edits: each timed step removes (or
// re-adds) one deterministically chosen arc, delta-refines the persistent
// state, and races a from-scratch refinement of the same graph over the
// same (warm) interner.  Warmth is symmetric: both paths see an interner
// that already holds every type of the unedited graph, so the ratio
// isolates the frontier restriction rather than hash-table cold-start.
// The first cut/heal pair is an untimed warm-up (it populates the delta
// path's reusable scratch generations) and the timed edits are summarized
// by their medians, so one scheduler hiccup cannot flip the gated ratio.
EditTrialResult run_edit_trial(LDigraph g, int radius, int pairs,
                               std::uint64_t seed) {
  EditTrialResult out;
  TypeInterner interner;
  RefineState state(g, interner, /*keep_rounds=*/true);
  state.types_at(radius);  // prime: the session's existing refinement
  std::mt19937_64 rng(seed);
  std::vector<double> delta_times, full_times;
  for (int p = 0; p < pairs + 1; ++p) {
    const bool warmup = p == 0;
    const auto& arcs = g.arcs();
    const Arc cut = arcs[rng() % arcs.size()];
    for (const bool healing : {false, true}) {
      if (healing)
        g.add_arc(cut.from, cut.to, cut.label);
      else
        g.remove_arc(cut.from, cut.to);

      phase("delta-requery");
      auto t0 = std::chrono::steady_clock::now();
      const RefineState::DeltaStats st = state.refine_delta(g);
      const std::vector<lapx::core::TypeId> delta_ids = state.types_at(radius);
      if (!warmup) delta_times.push_back(seconds_since(t0));

      phase("full-refine");
      t0 = std::chrono::steady_clock::now();
      RefineState scratch(g, interner);
      const std::vector<lapx::core::TypeId>& full_ids =
          scratch.types_at(radius);
      if (!warmup) full_times.push_back(seconds_since(t0));

      out.ids_identical = out.ids_identical && delta_ids == full_ids;
      out.last_dirty = st.dirty_vertices;
      out.last_frontier = st.frontier_vertices;
      if (!warmup) ++out.edits;
    }
  }
  out.delta_seconds = median_of(std::move(delta_times));
  out.full_seconds = median_of(std::move(full_times));
  return out;
}

void print_edit_table() {
  print_header("E18  incremental delta-refinement: edit + requery",
               "an edit changes view types only within radius r of its "
               "endpoints; re-refining that frontier beats from-scratch "
               "refinement >= 5x on the large lift");
  constexpr int kRadius = 3;
  constexpr int kPairs = 4;  // cut+heal pairs => 2*kPairs timed edits each

  struct Instance {
    const char* name;
    LDigraph graph;
    bool gate;  // acceptance gates on the large lift only
  };
  std::mt19937_64 lift_rng(2012);  // PODC'12 -- fixed so values stay stable
  std::vector<Instance> instances;
  instances.push_back(
      {"torus 24x24",
       lapx::graph::to_ldigraph(lapx::graph::torus({24, 24})), false});
  instances.push_back(
      {"lift 2000x(3x4)",
       lapx::graph::random_lift(lapx::graph::directed_torus({3, 4}), 2000,
                                lift_rng)
           .graph,
       true});

  print_row({"instance", "n", "arcs", "full ms/edit", "delta ms/edit",
             "speedup", "frontier"});
  for (Instance& inst : instances) {
    const auto n = inst.graph.num_vertices();
    const auto arcs = inst.graph.num_arcs();
    const EditTrialResult res =
        run_edit_trial(std::move(inst.graph), kRadius, kPairs, 42);
    const double per_full = res.full_seconds * 1e3;
    const double per_delta = res.delta_seconds * 1e3;
    const double speedup =
        res.delta_seconds > 0 ? res.full_seconds / res.delta_seconds : 0.0;
    print_row({inst.name, std::to_string(n), std::to_string(arcs),
               fmt(per_full, 3), fmt(per_delta, 3), fmt(speedup, 1) + "x",
               std::to_string(res.last_frontier) + "/" + std::to_string(n)});
    const std::string tag = inst.gate ? "lift" : "torus";
    check(res.ids_identical,
          "delta TypeIds byte-identical to from-scratch (" + tag + ", " +
              std::to_string(res.edits) + " edits, r=" +
              std::to_string(kRadius) + ")");
    if (inst.gate)
      check(speedup >= 5.0,
            "single-edit requery >= 5x full recompute (large lift)");
    // The frontier is a deterministic function of graph + seed + radius;
    // the timings are not and stay out of the gated values.
    value(tag + "_last_dirty", static_cast<double>(res.last_dirty));
    value(tag + "_last_frontier", static_cast<double>(res.last_frontier));
    value(tag + "_edits", static_cast<double>(res.edits));
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Service transcripts: mutate + requery across executor widths.

// A torus edge by index, from the same generator the service uses, so the
// mutate requests below are valid without asking the daemon.
std::vector<std::string> mutate_requery_stream() {
  const auto edges = lapx::graph::torus({8, 8}).edges();
  std::vector<std::string> reqs;
  int id = 1;
  auto add = [&](const std::string& body) {
    reqs.push_back("{\"id\":" + std::to_string(id++) + "," + body + "}");
  };
  add(R"("op":"generate","name":"g","family":"torus","args":[8,8])");
  for (int k = 0; k < 6; ++k) {
    const auto [u, v] = edges[static_cast<std::size_t>(k * 17 + 3) %
                              edges.size()];
    const std::string uv =
        "\"u\":" + std::to_string(u) + ",\"v\":" + std::to_string(v);
    add(R"("op":"views","graph":"g","radius":2)");
    add(R"("op":"homogeneity","graph":"g","radius":1)");
    add(R"("op":"mutate","name":"g","edits":[{"op":"remove",)" + uv + "}]");
    add(R"("op":"views","graph":"g","radius":2)");
    add(R"("op":"analyze","graph":"g")");
    add(R"("op":"mutate","name":"g","edits":[{"op":"add",)" + uv + "}]");
    add(R"("op":"views","graph":"g","radius":2)");
  }
  add(R"("op":"session_info")");
  return reqs;
}

std::string run_transcript(int executors, const std::vector<std::string>& reqs) {
  Service::Options opt;
  opt.scheduler.executors = executors;
  Service svc(opt);
  std::string bytes;
  ResponseSequencer sequencer;
  constexpr std::size_t kWindow = 16;
  for (const std::string& r : reqs) {
    sequencer.enqueue(svc.submit(r));
    if (sequencer.in_flight() >= kWindow) sequencer.drain_one(bytes);
    sequencer.drain_ready(bytes);
  }
  sequencer.drain_all(bytes);
  return bytes;
}

void print_transcript_table() {
  print_header("E18b lapxd mutate/requery transcripts vs executor width",
               "mutations are inline admin ops and queries pin their epoch "
               "at submission, so transcripts are byte-identical at any "
               "executor count");
  phase("service-transcript");
  // Pin the pool: the axis under test is the scheduler width.
  lapx::runtime::set_thread_count(1);
  const std::vector<std::string> reqs = mutate_requery_stream();
  std::printf("stream: %zu requests (6 cut/heal mutate pairs interleaved "
              "with views/homogeneity/analyze requeries)\n\n",
              reqs.size());
  const std::string t1 = run_transcript(1, reqs);
  const std::string t4 = run_transcript(4, reqs);
  lapx::runtime::set_thread_count(0);
  print_row({"executors", "transcript bytes"});
  print_row({"1", std::to_string(t1.size())});
  print_row({"4", std::to_string(t4.size())});
  std::printf("\n");
  check(!t1.empty() && t1 == t4,
        "mutate/requery transcript byte-identical at executors 1 vs 4");
  check(t1.find("\"error\"") == std::string::npos,
        "no error envelopes in the mutate/requery stream");
  value("transcript_requests", static_cast<double>(reqs.size()));
  value("transcript_bytes", static_cast<double>(t1.size()));
  std::printf("\n");
}

void print_tables() {
  print_edit_table();
  print_transcript_table();
}

void BM_DeltaRequery(benchmark::State& state) {
  std::mt19937_64 rng(2012);
  auto lift =
      lapx::graph::random_lift(lapx::graph::directed_torus({3, 4}), 500, rng);
  LDigraph g = std::move(lift.graph);
  TypeInterner interner;
  RefineState st(g, interner, /*keep_rounds=*/true);
  st.types_at(3);
  const Arc cut = g.arcs()[rng() % g.arcs().size()];
  bool present = true;
  for (auto _ : state) {
    if (present)
      g.remove_arc(cut.from, cut.to);
    else
      g.add_arc(cut.from, cut.to, cut.label);
    present = !present;
    st.refine_delta(g);
    benchmark::DoNotOptimize(st.types_at(3));
  }
}
BENCHMARK(BM_DeltaRequery);

void BM_FullRefine(benchmark::State& state) {
  std::mt19937_64 rng(2012);
  auto lift =
      lapx::graph::random_lift(lapx::graph::directed_torus({3, 4}), 500, rng);
  const LDigraph g = std::move(lift.graph);
  TypeInterner interner;
  RefineState(g, interner).types_at(3);  // warm the interner once
  for (auto _ : state) {
    RefineState fresh(g, interner);
    benchmark::DoNotOptimize(fresh.types_at(3));
  }
}
BENCHMARK(BM_FullRefine);

}  // namespace

LAPX_BENCH_MAIN(print_tables)
