// E2 -- Figure 2 / Section 1.1: separating the models by symmetry breaking
// on cycles.
//
//  * ID: Cole-Vishkin finds a 3-colouring, hence an MIS, in O(log* n)
//    rounds; we print the measured round counts against log*(n).
//  * PO: on the completely symmetric directed cycle every node has the same
//    view, so no PO algorithm can output a nonempty proper independent set
//    -- verified exhaustively over all radius-r PO behaviours (a PO
//    algorithm on the cycle is one bit, because there is a single view
//    type).
//  * OI: a single "seam" is the only symmetry-breaking resource; the
//    local-minimum rule picks exactly one node per seam, so the MIS size is
//    O(#components), not Omega(n) -- the Theta(n) separation.

#include <numeric>
#include <random>

#include "bench_common.hpp"
#include "lapx/algorithms/cole_vishkin.hpp"
#include "lapx/algorithms/oi.hpp"
#include "lapx/core/model.hpp"
#include "lapx/graph/generators.hpp"
#include "lapx/problems/problem.hpp"

namespace {

using namespace lapx;

void print_tables() {
  bench::print_header(
      "E2: symmetry breaking on cycles, Figure 2",
      "ID: MIS in O(log* n) rounds [Cole-Vishkin]; OI: one seam only; "
      "PO: impossible on the symmetric cycle");

  // --- ID: Cole-Vishkin round counts ---
  bench::print_row({"n", "CV rounds", "MIS rounds", "log*(n)", "MIS size",
                    "valid"});
  std::mt19937_64 rng(2);
  for (int n : {8, 64, 1024, 16384, 262144, 1 << 20}) {
    std::vector<std::int64_t> ids(n);
    std::iota(ids.begin(), ids.end(), 1);
    std::shuffle(ids.begin(), ids.end(), rng);
    const auto coloring = algorithms::cole_vishkin_3coloring(ids);
    int rounds = coloring.rounds;
    const auto mis = algorithms::mis_from_coloring(coloring.colors, &rounds);
    std::size_t size = 0;
    for (bool b : mis) size += b;
    bench::print_row({std::to_string(n), std::to_string(coloring.rounds),
                      std::to_string(rounds),
                      std::to_string(algorithms::log_star(n)),
                      std::to_string(size),
                      algorithms::is_cycle_mis(mis) ? "yes" : "NO"});
  }

  // --- PO: exhaustive impossibility on the symmetric cycle ---
  {
    const int n = 30, r = 2;
    const auto g = graph::directed_cycle(n);
    // All nodes share one view type, so a PO vertex algorithm is a single
    // bit: output 0 everywhere (empty set, not maximal) or 1 everywhere
    // (not independent).  Verify the premise and both failures.
    const std::string type = core::view_type(core::view(g, 0, r));
    bool all_same = true;
    for (graph::Vertex v = 1; v < n; ++v)
      all_same &= core::view_type(core::view(g, v, r)) == type;
    bench::check(all_same, "symmetric cycle: all views identical at r=2");
    const auto& is = problems::independent_set();
    const std::vector<bool> empty(n, false), full(n, true);
    const bool empty_is_mis = [&] {
      // maximality: some vertex has no chosen neighbour and is not chosen
      return false;  // the empty set is trivially not maximal on a cycle
    }();
    bench::check(!empty_is_mis && is.feasible(g.underlying_graph(),
                                              problems::vertex_solution(empty)),
                 "constant-0 output: independent but not maximal");
    bench::check(!is.feasible(g.underlying_graph(),
                              problems::vertex_solution(full)),
                 "constant-1 output: not independent");
  }

  // --- OI: the seam is the only resource ---
  bench::print_row({"n", "OI local-min MIS size", "fraction"});
  for (int n : {30, 300, 3000}) {
    order::Keys keys(n);
    std::iota(keys.begin(), keys.end(), 0);
    const auto out = core::run_oi(graph::cycle(n), keys,
                                  algorithms::local_min_is_oi(), 1);
    std::size_t size = 0;
    for (bool b : out) size += b;
    bench::print_row({std::to_string(n), std::to_string(size),
                      bench::fmt(static_cast<double>(size) / n)});
  }
  std::printf(
      "  -> with the aligned order the independent set is one node per seam\n"
      "     (size 1), vs ~n/3 under a random order: the Theta(n) OI gap.\n");
}

void BM_ColeVishkin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::int64_t> ids(n);
  std::iota(ids.begin(), ids.end(), 1);
  std::mt19937_64 rng(7);
  std::shuffle(ids.begin(), ids.end(), rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(algorithms::cole_vishkin_3coloring(ids));
  state.SetComplexityN(n);
}
BENCHMARK(BM_ColeVishkin)->Range(1 << 8, 1 << 18)->Complexity();

}  // namespace

LAPX_BENCH_MAIN(print_tables)
