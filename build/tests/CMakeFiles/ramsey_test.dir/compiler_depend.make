# Empty compiler generated dependencies file for ramsey_test.
# This may be replaced when dependencies are built.
