file(REMOVE_RECURSE
  "CMakeFiles/ramsey_test.dir/ramsey_test.cpp.o"
  "CMakeFiles/ramsey_test.dir/ramsey_test.cpp.o.d"
  "ramsey_test"
  "ramsey_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ramsey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
