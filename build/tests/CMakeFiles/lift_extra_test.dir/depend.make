# Empty dependencies file for lift_extra_test.
# This may be replaced when dependencies are built.
