file(REMOVE_RECURSE
  "CMakeFiles/lift_extra_test.dir/lift_extra_test.cpp.o"
  "CMakeFiles/lift_extra_test.dir/lift_extra_test.cpp.o.d"
  "lift_extra_test"
  "lift_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lift_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
