file(REMOVE_RECURSE
  "CMakeFiles/core_edge_cases_test.dir/core_edge_cases_test.cpp.o"
  "CMakeFiles/core_edge_cases_test.dir/core_edge_cases_test.cpp.o.d"
  "core_edge_cases_test"
  "core_edge_cases_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_edge_cases_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
