# Empty compiler generated dependencies file for fractional_io_test.
# This may be replaced when dependencies are built.
