file(REMOVE_RECURSE
  "CMakeFiles/fractional_io_test.dir/fractional_io_test.cpp.o"
  "CMakeFiles/fractional_io_test.dir/fractional_io_test.cpp.o.d"
  "fractional_io_test"
  "fractional_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fractional_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
