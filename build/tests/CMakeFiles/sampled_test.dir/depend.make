# Empty dependencies file for sampled_test.
# This may be replaced when dependencies are built.
