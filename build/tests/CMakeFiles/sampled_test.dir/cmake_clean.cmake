file(REMOVE_RECURSE
  "CMakeFiles/sampled_test.dir/sampled_test.cpp.o"
  "CMakeFiles/sampled_test.dir/sampled_test.cpp.o.d"
  "sampled_test"
  "sampled_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampled_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
