# Empty compiler generated dependencies file for synthesis_lcl_test.
# This may be replaced when dependencies are built.
