file(REMOVE_RECURSE
  "CMakeFiles/synthesis_lcl_test.dir/synthesis_lcl_test.cpp.o"
  "CMakeFiles/synthesis_lcl_test.dir/synthesis_lcl_test.cpp.o.d"
  "synthesis_lcl_test"
  "synthesis_lcl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_lcl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
