file(REMOVE_RECURSE
  "CMakeFiles/homogeneous_test.dir/homogeneous_test.cpp.o"
  "CMakeFiles/homogeneous_test.dir/homogeneous_test.cpp.o.d"
  "homogeneous_test"
  "homogeneous_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogeneous_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
