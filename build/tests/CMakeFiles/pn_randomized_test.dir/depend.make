# Empty dependencies file for pn_randomized_test.
# This may be replaced when dependencies are built.
