file(REMOVE_RECURSE
  "CMakeFiles/pn_randomized_test.dir/pn_randomized_test.cpp.o"
  "CMakeFiles/pn_randomized_test.dir/pn_randomized_test.cpp.o.d"
  "pn_randomized_test"
  "pn_randomized_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pn_randomized_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
