file(REMOVE_RECURSE
  "CMakeFiles/bench_approximability_table.dir/bench_approximability_table.cpp.o"
  "CMakeFiles/bench_approximability_table.dir/bench_approximability_table.cpp.o.d"
  "bench_approximability_table"
  "bench_approximability_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_approximability_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
