# Empty dependencies file for bench_approximability_table.
# This may be replaced when dependencies are built.
