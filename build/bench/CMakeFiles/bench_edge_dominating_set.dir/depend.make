# Empty dependencies file for bench_edge_dominating_set.
# This may be replaced when dependencies are built.
