file(REMOVE_RECURSE
  "CMakeFiles/bench_edge_dominating_set.dir/bench_edge_dominating_set.cpp.o"
  "CMakeFiles/bench_edge_dominating_set.dir/bench_edge_dominating_set.cpp.o.d"
  "bench_edge_dominating_set"
  "bench_edge_dominating_set.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge_dominating_set.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
