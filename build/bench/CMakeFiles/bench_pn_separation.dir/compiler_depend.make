# Empty compiler generated dependencies file for bench_pn_separation.
# This may be replaced when dependencies are built.
