file(REMOVE_RECURSE
  "CMakeFiles/bench_pn_separation.dir/bench_pn_separation.cpp.o"
  "CMakeFiles/bench_pn_separation.dir/bench_pn_separation.cpp.o.d"
  "bench_pn_separation"
  "bench_pn_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pn_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
