# Empty compiler generated dependencies file for bench_oi_to_po.
# This may be replaced when dependencies are built.
