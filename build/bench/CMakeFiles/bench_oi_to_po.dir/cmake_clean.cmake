file(REMOVE_RECURSE
  "CMakeFiles/bench_oi_to_po.dir/bench_oi_to_po.cpp.o"
  "CMakeFiles/bench_oi_to_po.dir/bench_oi_to_po.cpp.o.d"
  "bench_oi_to_po"
  "bench_oi_to_po.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_oi_to_po.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
