file(REMOVE_RECURSE
  "CMakeFiles/bench_ramsey.dir/bench_ramsey.cpp.o"
  "CMakeFiles/bench_ramsey.dir/bench_ramsey.cpp.o.d"
  "bench_ramsey"
  "bench_ramsey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ramsey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
