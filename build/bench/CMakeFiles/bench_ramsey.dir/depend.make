# Empty dependencies file for bench_ramsey.
# This may be replaced when dependencies are built.
