file(REMOVE_RECURSE
  "CMakeFiles/bench_torus_homogeneity.dir/bench_torus_homogeneity.cpp.o"
  "CMakeFiles/bench_torus_homogeneity.dir/bench_torus_homogeneity.cpp.o.d"
  "bench_torus_homogeneity"
  "bench_torus_homogeneity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_torus_homogeneity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
