# Empty compiler generated dependencies file for bench_torus_homogeneity.
# This may be replaced when dependencies are built.
