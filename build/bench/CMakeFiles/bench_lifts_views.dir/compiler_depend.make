# Empty compiler generated dependencies file for bench_lifts_views.
# This may be replaced when dependencies are built.
