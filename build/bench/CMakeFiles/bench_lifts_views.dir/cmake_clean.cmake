file(REMOVE_RECURSE
  "CMakeFiles/bench_lifts_views.dir/bench_lifts_views.cpp.o"
  "CMakeFiles/bench_lifts_views.dir/bench_lifts_views.cpp.o.d"
  "bench_lifts_views"
  "bench_lifts_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifts_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
