file(REMOVE_RECURSE
  "CMakeFiles/bench_homogeneous_lift.dir/bench_homogeneous_lift.cpp.o"
  "CMakeFiles/bench_homogeneous_lift.dir/bench_homogeneous_lift.cpp.o.d"
  "bench_homogeneous_lift"
  "bench_homogeneous_lift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homogeneous_lift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
