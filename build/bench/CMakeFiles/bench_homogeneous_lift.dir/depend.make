# Empty dependencies file for bench_homogeneous_lift.
# This may be replaced when dependencies are built.
