file(REMOVE_RECURSE
  "CMakeFiles/bench_homogeneous_construction.dir/bench_homogeneous_construction.cpp.o"
  "CMakeFiles/bench_homogeneous_construction.dir/bench_homogeneous_construction.cpp.o.d"
  "bench_homogeneous_construction"
  "bench_homogeneous_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_homogeneous_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
