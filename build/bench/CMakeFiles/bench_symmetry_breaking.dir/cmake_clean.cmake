file(REMOVE_RECURSE
  "CMakeFiles/bench_symmetry_breaking.dir/bench_symmetry_breaking.cpp.o"
  "CMakeFiles/bench_symmetry_breaking.dir/bench_symmetry_breaking.cpp.o.d"
  "bench_symmetry_breaking"
  "bench_symmetry_breaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_symmetry_breaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
