# Empty dependencies file for bench_symmetry_breaking.
# This may be replaced when dependencies are built.
