file(REMOVE_RECURSE
  "CMakeFiles/bench_fractional.dir/bench_fractional.cpp.o"
  "CMakeFiles/bench_fractional.dir/bench_fractional.cpp.o.d"
  "bench_fractional"
  "bench_fractional.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fractional.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
