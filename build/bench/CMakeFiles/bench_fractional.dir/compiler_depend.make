# Empty compiler generated dependencies file for bench_fractional.
# This may be replaced when dependencies are built.
