
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ball.cpp" "src/core/CMakeFiles/lapx_core.dir/ball.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/ball.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/lapx_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/model.cpp.o.d"
  "/root/repo/src/core/pn_view.cpp" "src/core/CMakeFiles/lapx_core.dir/pn_view.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/pn_view.cpp.o.d"
  "/root/repo/src/core/ramsey.cpp" "src/core/CMakeFiles/lapx_core.dir/ramsey.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/ramsey.cpp.o.d"
  "/root/repo/src/core/sampled.cpp" "src/core/CMakeFiles/lapx_core.dir/sampled.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/sampled.cpp.o.d"
  "/root/repo/src/core/simulate.cpp" "src/core/CMakeFiles/lapx_core.dir/simulate.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/simulate.cpp.o.d"
  "/root/repo/src/core/synthesis.cpp" "src/core/CMakeFiles/lapx_core.dir/synthesis.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/synthesis.cpp.o.d"
  "/root/repo/src/core/tstar.cpp" "src/core/CMakeFiles/lapx_core.dir/tstar.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/tstar.cpp.o.d"
  "/root/repo/src/core/view.cpp" "src/core/CMakeFiles/lapx_core.dir/view.cpp.o" "gcc" "src/core/CMakeFiles/lapx_core.dir/view.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lapx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/lapx_order.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/lapx_group.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/lapx_problems.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
