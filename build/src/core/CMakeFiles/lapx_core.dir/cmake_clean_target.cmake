file(REMOVE_RECURSE
  "liblapx_core.a"
)
