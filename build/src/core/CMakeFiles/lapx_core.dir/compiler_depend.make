# Empty compiler generated dependencies file for lapx_core.
# This may be replaced when dependencies are built.
