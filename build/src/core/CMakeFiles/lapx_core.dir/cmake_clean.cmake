file(REMOVE_RECURSE
  "CMakeFiles/lapx_core.dir/ball.cpp.o"
  "CMakeFiles/lapx_core.dir/ball.cpp.o.d"
  "CMakeFiles/lapx_core.dir/model.cpp.o"
  "CMakeFiles/lapx_core.dir/model.cpp.o.d"
  "CMakeFiles/lapx_core.dir/pn_view.cpp.o"
  "CMakeFiles/lapx_core.dir/pn_view.cpp.o.d"
  "CMakeFiles/lapx_core.dir/ramsey.cpp.o"
  "CMakeFiles/lapx_core.dir/ramsey.cpp.o.d"
  "CMakeFiles/lapx_core.dir/sampled.cpp.o"
  "CMakeFiles/lapx_core.dir/sampled.cpp.o.d"
  "CMakeFiles/lapx_core.dir/simulate.cpp.o"
  "CMakeFiles/lapx_core.dir/simulate.cpp.o.d"
  "CMakeFiles/lapx_core.dir/synthesis.cpp.o"
  "CMakeFiles/lapx_core.dir/synthesis.cpp.o.d"
  "CMakeFiles/lapx_core.dir/tstar.cpp.o"
  "CMakeFiles/lapx_core.dir/tstar.cpp.o.d"
  "CMakeFiles/lapx_core.dir/view.cpp.o"
  "CMakeFiles/lapx_core.dir/view.cpp.o.d"
  "liblapx_core.a"
  "liblapx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
