# Empty dependencies file for lapx_group.
# This may be replaced when dependencies are built.
