file(REMOVE_RECURSE
  "liblapx_group.a"
)
