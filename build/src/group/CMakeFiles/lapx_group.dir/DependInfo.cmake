
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/group/cayley.cpp" "src/group/CMakeFiles/lapx_group.dir/cayley.cpp.o" "gcc" "src/group/CMakeFiles/lapx_group.dir/cayley.cpp.o.d"
  "/root/repo/src/group/homogeneous.cpp" "src/group/CMakeFiles/lapx_group.dir/homogeneous.cpp.o" "gcc" "src/group/CMakeFiles/lapx_group.dir/homogeneous.cpp.o.d"
  "/root/repo/src/group/wreath.cpp" "src/group/CMakeFiles/lapx_group.dir/wreath.cpp.o" "gcc" "src/group/CMakeFiles/lapx_group.dir/wreath.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lapx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/lapx_order.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
