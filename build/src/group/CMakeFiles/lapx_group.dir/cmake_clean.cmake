file(REMOVE_RECURSE
  "CMakeFiles/lapx_group.dir/cayley.cpp.o"
  "CMakeFiles/lapx_group.dir/cayley.cpp.o.d"
  "CMakeFiles/lapx_group.dir/homogeneous.cpp.o"
  "CMakeFiles/lapx_group.dir/homogeneous.cpp.o.d"
  "CMakeFiles/lapx_group.dir/wreath.cpp.o"
  "CMakeFiles/lapx_group.dir/wreath.cpp.o.d"
  "liblapx_group.a"
  "liblapx_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
