
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/cole_vishkin.cpp" "src/algorithms/CMakeFiles/lapx_algorithms.dir/cole_vishkin.cpp.o" "gcc" "src/algorithms/CMakeFiles/lapx_algorithms.dir/cole_vishkin.cpp.o.d"
  "/root/repo/src/algorithms/id.cpp" "src/algorithms/CMakeFiles/lapx_algorithms.dir/id.cpp.o" "gcc" "src/algorithms/CMakeFiles/lapx_algorithms.dir/id.cpp.o.d"
  "/root/repo/src/algorithms/oi.cpp" "src/algorithms/CMakeFiles/lapx_algorithms.dir/oi.cpp.o" "gcc" "src/algorithms/CMakeFiles/lapx_algorithms.dir/oi.cpp.o.d"
  "/root/repo/src/algorithms/po.cpp" "src/algorithms/CMakeFiles/lapx_algorithms.dir/po.cpp.o" "gcc" "src/algorithms/CMakeFiles/lapx_algorithms.dir/po.cpp.o.d"
  "/root/repo/src/algorithms/randomized.cpp" "src/algorithms/CMakeFiles/lapx_algorithms.dir/randomized.cpp.o" "gcc" "src/algorithms/CMakeFiles/lapx_algorithms.dir/randomized.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lapx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lapx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/lapx_group.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/lapx_order.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/lapx_problems.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
