# Empty compiler generated dependencies file for lapx_algorithms.
# This may be replaced when dependencies are built.
