file(REMOVE_RECURSE
  "CMakeFiles/lapx_algorithms.dir/cole_vishkin.cpp.o"
  "CMakeFiles/lapx_algorithms.dir/cole_vishkin.cpp.o.d"
  "CMakeFiles/lapx_algorithms.dir/id.cpp.o"
  "CMakeFiles/lapx_algorithms.dir/id.cpp.o.d"
  "CMakeFiles/lapx_algorithms.dir/oi.cpp.o"
  "CMakeFiles/lapx_algorithms.dir/oi.cpp.o.d"
  "CMakeFiles/lapx_algorithms.dir/po.cpp.o"
  "CMakeFiles/lapx_algorithms.dir/po.cpp.o.d"
  "CMakeFiles/lapx_algorithms.dir/randomized.cpp.o"
  "CMakeFiles/lapx_algorithms.dir/randomized.cpp.o.d"
  "liblapx_algorithms.a"
  "liblapx_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
