file(REMOVE_RECURSE
  "liblapx_algorithms.a"
)
