# Empty dependencies file for lapx_order.
# This may be replaced when dependencies are built.
