file(REMOVE_RECURSE
  "CMakeFiles/lapx_order.dir/homogeneity.cpp.o"
  "CMakeFiles/lapx_order.dir/homogeneity.cpp.o.d"
  "liblapx_order.a"
  "liblapx_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
