file(REMOVE_RECURSE
  "liblapx_order.a"
)
