
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/problems/exact.cpp" "src/problems/CMakeFiles/lapx_problems.dir/exact.cpp.o" "gcc" "src/problems/CMakeFiles/lapx_problems.dir/exact.cpp.o.d"
  "/root/repo/src/problems/fractional.cpp" "src/problems/CMakeFiles/lapx_problems.dir/fractional.cpp.o" "gcc" "src/problems/CMakeFiles/lapx_problems.dir/fractional.cpp.o.d"
  "/root/repo/src/problems/lcl.cpp" "src/problems/CMakeFiles/lapx_problems.dir/lcl.cpp.o" "gcc" "src/problems/CMakeFiles/lapx_problems.dir/lcl.cpp.o.d"
  "/root/repo/src/problems/matching.cpp" "src/problems/CMakeFiles/lapx_problems.dir/matching.cpp.o" "gcc" "src/problems/CMakeFiles/lapx_problems.dir/matching.cpp.o.d"
  "/root/repo/src/problems/problem.cpp" "src/problems/CMakeFiles/lapx_problems.dir/problem.cpp.o" "gcc" "src/problems/CMakeFiles/lapx_problems.dir/problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lapx_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
