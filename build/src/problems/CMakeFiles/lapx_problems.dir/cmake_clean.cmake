file(REMOVE_RECURSE
  "CMakeFiles/lapx_problems.dir/exact.cpp.o"
  "CMakeFiles/lapx_problems.dir/exact.cpp.o.d"
  "CMakeFiles/lapx_problems.dir/fractional.cpp.o"
  "CMakeFiles/lapx_problems.dir/fractional.cpp.o.d"
  "CMakeFiles/lapx_problems.dir/lcl.cpp.o"
  "CMakeFiles/lapx_problems.dir/lcl.cpp.o.d"
  "CMakeFiles/lapx_problems.dir/matching.cpp.o"
  "CMakeFiles/lapx_problems.dir/matching.cpp.o.d"
  "CMakeFiles/lapx_problems.dir/problem.cpp.o"
  "CMakeFiles/lapx_problems.dir/problem.cpp.o.d"
  "liblapx_problems.a"
  "liblapx_problems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_problems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
