file(REMOVE_RECURSE
  "liblapx_problems.a"
)
