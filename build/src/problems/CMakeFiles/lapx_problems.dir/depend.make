# Empty dependencies file for lapx_problems.
# This may be replaced when dependencies are built.
