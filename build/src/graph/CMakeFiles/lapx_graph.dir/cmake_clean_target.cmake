file(REMOVE_RECURSE
  "liblapx_graph.a"
)
