file(REMOVE_RECURSE
  "CMakeFiles/lapx_graph.dir/digraph.cpp.o"
  "CMakeFiles/lapx_graph.dir/digraph.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/generators.cpp.o"
  "CMakeFiles/lapx_graph.dir/generators.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/graph.cpp.o"
  "CMakeFiles/lapx_graph.dir/graph.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/io.cpp.o"
  "CMakeFiles/lapx_graph.dir/io.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/isomorphism.cpp.o"
  "CMakeFiles/lapx_graph.dir/isomorphism.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/lift.cpp.o"
  "CMakeFiles/lapx_graph.dir/lift.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/port_numbering.cpp.o"
  "CMakeFiles/lapx_graph.dir/port_numbering.cpp.o.d"
  "CMakeFiles/lapx_graph.dir/properties.cpp.o"
  "CMakeFiles/lapx_graph.dir/properties.cpp.o.d"
  "liblapx_graph.a"
  "liblapx_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
