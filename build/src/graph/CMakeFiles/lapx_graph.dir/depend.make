# Empty dependencies file for lapx_graph.
# This may be replaced when dependencies are built.
