# Empty compiler generated dependencies file for lapx_runtime.
# This may be replaced when dependencies are built.
