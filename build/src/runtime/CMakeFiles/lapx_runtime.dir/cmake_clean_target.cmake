file(REMOVE_RECURSE
  "liblapx_runtime.a"
)
