file(REMOVE_RECURSE
  "CMakeFiles/lapx_runtime.dir/engine.cpp.o"
  "CMakeFiles/lapx_runtime.dir/engine.cpp.o.d"
  "CMakeFiles/lapx_runtime.dir/gather.cpp.o"
  "CMakeFiles/lapx_runtime.dir/gather.cpp.o.d"
  "liblapx_runtime.a"
  "liblapx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
