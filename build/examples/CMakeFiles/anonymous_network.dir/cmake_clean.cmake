file(REMOVE_RECURSE
  "CMakeFiles/anonymous_network.dir/anonymous_network.cpp.o"
  "CMakeFiles/anonymous_network.dir/anonymous_network.cpp.o.d"
  "anonymous_network"
  "anonymous_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
