# Empty dependencies file for anonymous_network.
# This may be replaced when dependencies are built.
