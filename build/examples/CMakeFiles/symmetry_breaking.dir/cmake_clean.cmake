file(REMOVE_RECURSE
  "CMakeFiles/symmetry_breaking.dir/symmetry_breaking.cpp.o"
  "CMakeFiles/symmetry_breaking.dir/symmetry_breaking.cpp.o.d"
  "symmetry_breaking"
  "symmetry_breaking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetry_breaking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
