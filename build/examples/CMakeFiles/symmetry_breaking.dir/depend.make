# Empty dependencies file for symmetry_breaking.
# This may be replaced when dependencies are built.
