# Empty dependencies file for optimal_algorithm_synthesis.
# This may be replaced when dependencies are built.
