file(REMOVE_RECURSE
  "CMakeFiles/optimal_algorithm_synthesis.dir/optimal_algorithm_synthesis.cpp.o"
  "CMakeFiles/optimal_algorithm_synthesis.dir/optimal_algorithm_synthesis.cpp.o.d"
  "optimal_algorithm_synthesis"
  "optimal_algorithm_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimal_algorithm_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
