file(REMOVE_RECURSE
  "CMakeFiles/edge_dominating_set_bound.dir/edge_dominating_set_bound.cpp.o"
  "CMakeFiles/edge_dominating_set_bound.dir/edge_dominating_set_bound.cpp.o.d"
  "edge_dominating_set_bound"
  "edge_dominating_set_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_dominating_set_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
