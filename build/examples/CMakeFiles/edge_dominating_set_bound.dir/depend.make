# Empty dependencies file for edge_dominating_set_bound.
# This may be replaced when dependencies are built.
