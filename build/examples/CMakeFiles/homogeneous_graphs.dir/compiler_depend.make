# Empty compiler generated dependencies file for homogeneous_graphs.
# This may be replaced when dependencies are built.
