file(REMOVE_RECURSE
  "CMakeFiles/homogeneous_graphs.dir/homogeneous_graphs.cpp.o"
  "CMakeFiles/homogeneous_graphs.dir/homogeneous_graphs.cpp.o.d"
  "homogeneous_graphs"
  "homogeneous_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/homogeneous_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
