
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/lapx_cli.cpp" "tools/CMakeFiles/lapx_cli.dir/lapx_cli.cpp.o" "gcc" "tools/CMakeFiles/lapx_cli.dir/lapx_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/lapx_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/order/CMakeFiles/lapx_order.dir/DependInfo.cmake"
  "/root/repo/build/src/group/CMakeFiles/lapx_group.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lapx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/lapx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/problems/CMakeFiles/lapx_problems.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/lapx_algorithms.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
