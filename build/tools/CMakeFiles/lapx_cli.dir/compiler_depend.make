# Empty compiler generated dependencies file for lapx_cli.
# This may be replaced when dependencies are built.
