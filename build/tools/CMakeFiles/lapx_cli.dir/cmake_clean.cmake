file(REMOVE_RECURSE
  "CMakeFiles/lapx_cli.dir/lapx_cli.cpp.o"
  "CMakeFiles/lapx_cli.dir/lapx_cli.cpp.o.d"
  "lapx_cli"
  "lapx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lapx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
